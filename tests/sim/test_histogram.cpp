// Unit tests for the latency histogram.
#include "sim/histogram.hpp"

#include <gtest/gtest.h>

#include "sim/network_sim.hpp"
#include "sim/rng.hpp"

namespace profisched::sim {
namespace {

TEST(Histogram, EmptyDefaults) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(Histogram, ExactForSmallValues) {
  Histogram h;
  for (Ticks v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max(), 99);
  EXPECT_NEAR(h.mean(), 49.5, 1e-9);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(0.5), 49);  // exact: unit bins below 256
  EXPECT_EQ(h.quantile(1.0), 99);
}

TEST(Histogram, LargeValuesWithinFactorTwo) {
  Histogram h;
  h.add(1'000'000);
  const Ticks q = h.quantile(0.5);
  EXPECT_GE(q, 1'000'000);       // upper bin bound, clamped to max
  EXPECT_LE(q, 1'000'000);       // single sample: clamp makes it exact
  h.add(3'000'000);
  EXPECT_LE(h.quantile(1.0), 3'000'000);
  EXPECT_GE(h.quantile(1.0), 1'500'000);  // within the factor-2 bin bound
}

TEST(Histogram, WeightsCount) {
  Histogram h;
  h.add(10, 5);
  h.add(20, 5);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_NEAR(h.mean(), 15.0, 1e-9);
  EXPECT_EQ(h.quantile(0.25), 10);
  EXPECT_EQ(h.quantile(0.75), 20);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.add(-5);
  EXPECT_EQ(h.quantile(1.0), 0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 50; ++i) a.add(10);
  for (int i = 0; i < 50; ++i) b.add(200);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.max(), 200);
  EXPECT_NEAR(a.mean(), 105.0, 1e-9);
  EXPECT_EQ(a.quantile(0.25), 10);
  EXPECT_EQ(a.quantile(0.75), 200);
}

TEST(Histogram, QuantilesMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) h.add(rng.uniform(0, 5'000));
  Ticks prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const Ticks v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, SummaryMentionsPercentiles) {
  Histogram h;
  for (Ticks v = 1; v <= 100; ++v) h.add(v);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p95"), std::string::npos);
  EXPECT_NE(s.find("n=100"), std::string::npos);
}

TEST(Histogram, SimulatorCollectsWhenEnabled) {
  profibus::Network net;
  net.ttr = 10'000;
  profibus::Master m;
  m.high_streams = {
      profibus::MessageStream{.Ch = 300, .D = 5'000, .T = 2'000, .J = 0, .name = ""}};
  net.masters = {m};

  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 500'000;
  cfg.collect_histograms = true;
  const SimReport r = simulate(cfg);
  ASSERT_EQ(r.response_hist.size(), 1u);
  ASSERT_EQ(r.response_hist[0].size(), 1u);
  const Histogram& h = r.response_hist[0][0];
  EXPECT_EQ(h.count(), r.hp[0][0].completed);
  EXPECT_EQ(h.max(), r.hp[0][0].max_response);
  EXPECT_NEAR(h.mean(), r.hp[0][0].mean_response(), 1e-6);
}

TEST(Histogram, SimulatorSkipsWhenDisabled) {
  profibus::Network net;
  net.ttr = 10'000;
  profibus::Master m;
  m.high_streams = {
      profibus::MessageStream{.Ch = 300, .D = 5'000, .T = 2'000, .J = 0, .name = ""}};
  net.masters = {m};

  SimConfig cfg;
  cfg.net = net;
  cfg.horizon = 100'000;
  EXPECT_TRUE(simulate(cfg).response_hist.empty());
}

}  // namespace
}  // namespace profisched::sim
