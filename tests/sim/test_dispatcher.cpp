// Unit tests for the outgoing-queue architecture (FCFS stack vs AP priority
// queue with a one-deep stack slot).
#include "sim/dispatcher.hpp"

#include <gtest/gtest.h>

namespace profisched::sim {
namespace {

using profibus::ApPolicy;

PendingRequest req(std::size_t stream, Ticks release, Ticks rel_deadline, std::uint64_t seq) {
  return PendingRequest{
      .stream = stream,
      .release = release,
      .abs_deadline = release + rel_deadline,
      .rel_deadline = rel_deadline,
      .seq = seq,
  };
}

TEST(FcfsDispatcher, ServesInArrivalOrderRegardlessOfDeadlines) {
  Dispatcher d(ApPolicy::Fcfs);
  d.release(req(0, 0, 9'000, 0));   // lax first
  d.release(req(1, 1, 1'000, 1));   // tight second
  ASSERT_TRUE(d.has_pending());
  EXPECT_EQ(d.head().stream, 0u);   // FCFS: the lax one goes first
  d.complete_head();
  EXPECT_EQ(d.head().stream, 1u);
}

TEST(FcfsDispatcher, QueueIsUnbounded) {
  Dispatcher d(ApPolicy::Fcfs);
  for (std::uint64_t i = 0; i < 100; ++i) d.release(req(i % 3, Ticks(i), 5'000, i));
  EXPECT_EQ(d.pending(), 100u);
}

TEST(DmDispatcher, ReordersByRelativeDeadline) {
  Dispatcher d(ApPolicy::Dm);
  d.release(req(0, 0, 9'000, 0));  // takes the stack slot
  d.release(req(1, 1, 1'000, 1));
  d.release(req(2, 2, 5'000, 2));
  // Slot is occupied by stream 0 (non-revocable).
  EXPECT_EQ(d.head().stream, 0u);
  d.complete_head();
  // AP queue refills by DM order: tightest relative deadline first.
  EXPECT_EQ(d.head().stream, 1u);
  d.complete_head();
  EXPECT_EQ(d.head().stream, 2u);
}

TEST(DmDispatcher, StackSlotIsNeverRevoked) {
  // The one-T_cycle priority inversion the analysis charges as T*_cycle: a
  // lax request in the slot stays there even when an urgent one arrives.
  Dispatcher d(ApPolicy::Dm);
  d.release(req(0, 0, 90'000, 0));
  d.release(req(1, 1, 100, 1));
  EXPECT_EQ(d.head().stream, 0u);  // still the lax one
  EXPECT_EQ(d.pending(), 2u);
}

TEST(EdfDispatcher, OrdersByAbsoluteDeadline) {
  Dispatcher d(ApPolicy::Edf);
  d.release(req(0, 0, 50'000, 0));       // abs 50'000, takes slot
  d.release(req(1, 10'000, 20'000, 1));  // abs 30'000
  d.release(req(2, 100, 45'000, 2));     // abs 45'100
  d.complete_head();
  EXPECT_EQ(d.head().stream, 1u);  // earliest absolute deadline
  d.complete_head();
  EXPECT_EQ(d.head().stream, 2u);
}

TEST(EdfDispatcher, DmAndEdfCanDisagree) {
  // Stream with the tighter *relative* deadline released much later: DM puts
  // it first, EDF does not.
  Dispatcher dm(ApPolicy::Dm);
  Dispatcher edf(ApPolicy::Edf);
  for (Dispatcher* d : {&dm, &edf}) {
    d->release(req(9, 0, 1, 0));           // occupies slot in both
    d->release(req(0, 0, 30'000, 1));      // abs 30'000
    d->release(req(1, 40'000, 5'000, 2));  // abs 45'000, tighter relative D
    d->complete_head();
  }
  EXPECT_EQ(dm.head().stream, 1u);   // relative deadline 5'000 < 30'000
  EXPECT_EQ(edf.head().stream, 0u);  // absolute deadline 30'000 < 45'000
}

TEST(PriorityDispatcher, TiesBreakFifoBySeq) {
  Dispatcher d(ApPolicy::Dm);
  d.release(req(9, 0, 1, 0));
  d.release(req(1, 5, 7'000, 1));
  d.release(req(2, 6, 7'000, 2));  // same relative deadline, later seq
  d.complete_head();
  EXPECT_EQ(d.head().stream, 1u);
  d.complete_head();
  EXPECT_EQ(d.head().stream, 2u);
}

TEST(PriorityDispatcher, EmptySlotFilledImmediately) {
  Dispatcher d(ApPolicy::Edf);
  EXPECT_FALSE(d.has_pending());
  d.release(req(3, 0, 1'000, 0));
  EXPECT_TRUE(d.has_pending());
  EXPECT_EQ(d.head().stream, 3u);
}

TEST(PriorityDispatcher, PendingCountsSlotPlusApQueue) {
  Dispatcher d(ApPolicy::Dm);
  d.release(req(0, 0, 1'000, 0));
  d.release(req(1, 0, 2'000, 1));
  d.release(req(2, 0, 3'000, 2));
  EXPECT_EQ(d.pending(), 3u);
  d.complete_head();
  EXPECT_EQ(d.pending(), 2u);
  d.complete_head();
  d.complete_head();
  EXPECT_EQ(d.pending(), 0u);
  EXPECT_FALSE(d.has_pending());
}

}  // namespace
}  // namespace profisched::sim
