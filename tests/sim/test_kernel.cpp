// Unit tests for the simulation kernel.
#include "sim/kernel.hpp"

#include <gtest/gtest.h>

namespace profisched::sim {
namespace {

TEST(Kernel, ClockStartsAtZero) {
  Kernel k;
  EXPECT_EQ(k.now(), 0);
  EXPECT_EQ(k.events_processed(), 0u);
}

TEST(Kernel, AdvancesToEventTimes) {
  Kernel k;
  std::vector<Ticks> seen;
  k.at(10, [&] { seen.push_back(k.now()); });
  k.at(25, [&] { seen.push_back(k.now()); });
  k.run_until(100);
  EXPECT_EQ(seen, (std::vector<Ticks>{10, 25}));
  EXPECT_EQ(k.now(), 25);
}

TEST(Kernel, AfterIsRelativeToNow) {
  Kernel k;
  Ticks completion = -1;
  k.at(10, [&] { k.after(5, [&] { completion = k.now(); }); });
  k.run_until(100);
  EXPECT_EQ(completion, 15);
}

TEST(Kernel, HorizonIsInclusive) {
  Kernel k;
  bool at_horizon = false, past_horizon = false;
  k.at(50, [&] { at_horizon = true; });
  k.at(51, [&] { past_horizon = true; });
  k.run_until(50);
  EXPECT_TRUE(at_horizon);
  EXPECT_FALSE(past_horizon);
}

TEST(Kernel, ReturnsEventsProcessed) {
  Kernel k;
  for (Ticks t = 1; t <= 5; ++t) k.at(t, [] {});
  EXPECT_EQ(k.run_until(3), 3u);
  EXPECT_EQ(k.run_until(10), 2u);
  EXPECT_EQ(k.events_processed(), 5u);
}

TEST(Kernel, EventsCanCascade) {
  Kernel k;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) k.after(1, recurse);
  };
  k.at(0, recurse);
  k.run_until(1000);
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(k.now(), 99);
}

TEST(Kernel, SecondRunContinuesWhereFirstStopped) {
  Kernel k;
  std::vector<Ticks> seen;
  for (Ticks t : {10, 20, 30}) k.at(t, [&k, &seen] { seen.push_back(k.now()); });
  k.run_until(15);
  EXPECT_EQ(seen.size(), 1u);
  k.run_until(100);
  EXPECT_EQ(seen, (std::vector<Ticks>{10, 20, 30}));
}

// The past-time guards must hold in EVERY build configuration — they were
// once plain assert()s, which Release (NDEBUG) compiled away, letting a
// negative delay or stale absolute time silently rewind the clock and
// corrupt event ordering for the rest of the run.
TEST(Kernel, RejectsPastTimeSchedulingInAllBuildConfigurations) {
  Kernel k;
  k.at(10, [] {});
  k.run_until(10);
  ASSERT_EQ(k.now(), 10);
  EXPECT_THROW(k.after(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(k.at(9, [] {}), std::invalid_argument);
  // The guard must not over-reject the boundary: now() itself is legal.
  bool fired = false;
  EXPECT_NO_THROW(k.at(10, [&] { fired = true; }));
  EXPECT_NO_THROW(k.after(0, [] {}));
  k.run_until(10);
  EXPECT_TRUE(fired);
  EXPECT_EQ(k.now(), 10);  // clock never rewound
}

// Saturated times are legal and inert: an event at kNoBound never fires
// under a finite horizon, and a saturating after() from a late clock must
// not wrap negative (which the guard would then misreport as a rewind).
TEST(Kernel, SaturatedTimesNeverFireOrWrap) {
  Kernel k;
  bool fired = false;
  k.at(kNoBound, [&] { fired = true; });
  k.at(5, [] {});
  k.run_until(1'000'000);
  EXPECT_EQ(k.now(), 5);
  EXPECT_FALSE(fired);
  // after() saturates instead of overflowing past kNoBound.
  EXPECT_NO_THROW(k.after(kNoBound, [&] { fired = true; }));
  k.run_until(kNoBound - 1);
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace profisched::sim
