// Unit tests for the simulator's event queue.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace profisched::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kNoBound);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(30); });
  q.schedule(10, [&] { fired.push_back(10); });
  q.schedule(20, [&] { fired.push_back(20); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, SameTimeFifoByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.schedule(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.schedule(50, [] {});
  EXPECT_EQ(q.next_time(), 50);
  q.schedule(20, [] {});
  EXPECT_EQ(q.next_time(), 20);
  (void)q.pop();
  EXPECT_EQ(q.next_time(), 50);
}

// Horizon saturation: kNoBound is a legal event time that must sort after
// every finite time (never starving earlier events) and sat_add must pin at
// kNoBound instead of wrapping negative — a wrapped time would sort first
// and starve the whole queue.
TEST(EventQueue, SaturatedTimesSortLastAndNeverWrap) {
  EXPECT_EQ(sat_add(kNoBound, 1), kNoBound);
  EXPECT_EQ(sat_add(kNoBound - 3, 10), kNoBound);
  EXPECT_EQ(sat_add(kNoBound, kNoBound), kNoBound);
  EXPECT_EQ(sat_mul(kNoBound, 2), kNoBound);
  EXPECT_EQ(sat_mul(kNoBound / 2 + 1, 2), kNoBound);

  EventQueue q;
  std::vector<Ticks> popped;
  q.schedule(kNoBound, [] {});
  q.schedule(sat_add(kNoBound - 1, 100), [] {});  // saturates, joins the far bucket
  q.schedule(10, [] {});
  q.schedule(kNoBound - 1, [] {});
  EXPECT_EQ(q.next_time(), 10);  // finite work is never starved
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<Ticks>{10, kNoBound - 1, kNoBound, kNoBound}));
}

TEST(EventQueue, PopReturnsTimeAndSeq) {
  EventQueue q;
  q.schedule(7, [] {});
  q.schedule(7, [] {});
  const Event a = q.pop();
  const Event b = q.pop();
  EXPECT_EQ(a.time, 7);
  EXPECT_EQ(b.time, 7);
  EXPECT_LT(a.seq, b.seq);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1, [&] { fired.push_back(1); });
  q.schedule(3, [&] { fired.push_back(3); });
  q.pop().action();
  q.schedule(2, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace profisched::sim
