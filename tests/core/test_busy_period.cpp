// Unit tests for the synchronous busy period L = fix(W).
#include "core/busy_period.hpp"

#include <gtest/gtest.h>

namespace profisched {
namespace {

TEST(BusyPeriod, SingleTask) {
  const TaskSet ts{{Task{.C = 3, .D = 10, .T = 10, .J = 0, .name = ""}}};
  const BusyPeriod bp = synchronous_busy_period(ts);
  ASSERT_TRUE(bp.bounded());
  EXPECT_EQ(bp.length, 3);
}

TEST(BusyPeriod, HandComputedTwoTasks) {
  // C=2/T=5 and C=3/T=7: L0=5, W(5)=2+3=5 ✓ (⌈5/5⌉=1, ⌈5/7⌉=1) → L=5.
  const TaskSet ts{{
      Task{.C = 2, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = ""},
  }};
  EXPECT_EQ(synchronous_busy_period(ts).length, 5);
}

TEST(BusyPeriod, GrowsPastOnePeriod) {
  // C=3/T=5, C=3/T=7: L0=6 → W=2·3+3=9 → W=2·3+2·3=12 → W=3·3+2·3=15 →
  // W=3·3+3·3=18 → W=4·3+3·3=21 → W=5·3+3·3=24 → W=5·3+4·3=27 →
  // W=6·3+4·3=30 → W=6·3+5·3=33 → W=7·3+5·3=36 → … U=0.6+3/7≈1.0286>1!
  // Use U<1: C=2/T=5, C=3/T=6: L0=5 → W=2+3=5? ⌈5/5⌉=1,⌈5/6⌉=1 → 5 ✓.
  // Denser: C=3/T=6 (U=.5), C=4/T=9 (U≈.444): L0=7 → ⌈7/6⌉·3+⌈7/9⌉·4=6+4=10
  // → ⌈10/6⌉·3+⌈10/9⌉·4=6+8=14 → ⌈14/6⌉·3+⌈14/9⌉·4=9+8=17 →
  // ⌈17/6⌉·3+⌈17/9⌉·4=9+8=17 ✓ L=17.
  const TaskSet ts{{
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
      Task{.C = 4, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  EXPECT_EQ(synchronous_busy_period(ts).length, 17);
}

TEST(BusyPeriod, FullUtilizationReachesHyperperiod) {
  // U = 1 exactly: the busy period is the hyperperiod.
  const TaskSet ts{{
      Task{.C = 1, .D = 2, .T = 2, .J = 0, .name = ""},
      Task{.C = 2, .D = 4, .T = 4, .J = 0, .name = ""},
  }};
  EXPECT_EQ(synchronous_busy_period(ts).length, 4);
}

TEST(BusyPeriod, OverUtilizationDiverges) {
  const TaskSet ts{{
      Task{.C = 3, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
  }};  // U = 1.1
  EXPECT_FALSE(synchronous_busy_period(ts).bounded());
}

TEST(BusyPeriod, EmptySetIsZero) {
  EXPECT_EQ(synchronous_busy_period(TaskSet{}).length, 0);
}

TEST(BusyPeriod, JitterLengthensOrKeeps) {
  const TaskSet base{{
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
      Task{.C = 4, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  const TaskSet jittered{{
      Task{.C = 3, .D = 6, .T = 6, .J = 2, .name = ""},
      Task{.C = 4, .D = 9, .T = 9, .J = 3, .name = ""},
  }};
  const Ticks l0 = synchronous_busy_period(base).length;
  const Ticks l1 = synchronous_busy_period(jittered).length;
  ASSERT_NE(l1, kNoBound);
  EXPECT_GE(l1, l0);
}

TEST(BusyPeriod, ReportsIterations) {
  const TaskSet ts{{
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
      Task{.C = 4, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  EXPECT_GE(synchronous_busy_period(ts).iterations, 2);
}

TEST(BusyPeriod, FuelExhaustionReportsUnbounded) {
  const TaskSet ts{{
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
      Task{.C = 4, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  EXPECT_FALSE(synchronous_busy_period(ts, /*fuel=*/1).bounded());
}

// Property: L >= Σ C and L >= the busy period of any subset (monotone in
// added load), over utilization steps.
class BusyPeriodSweep : public ::testing::TestWithParam<Ticks> {};

TEST_P(BusyPeriodSweep, AtLeastTotalExecutionAndMonotone) {
  const Ticks c2 = GetParam();
  const TaskSet one{{Task{.C = 3, .D = 10, .T = 10, .J = 0, .name = ""}}};
  const TaskSet two{{
      Task{.C = 3, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = c2, .D = 17, .T = 17, .J = 0, .name = ""},
  }};
  const BusyPeriod bp = synchronous_busy_period(two);
  ASSERT_TRUE(bp.bounded());
  EXPECT_GE(bp.length, two.total_execution());
  EXPECT_GE(bp.length, synchronous_busy_period(one).length);
}

INSTANTIATE_TEST_SUITE_P(SecondTaskLoad, BusyPeriodSweep,
                         ::testing::Values(1, 2, 4, 6, 8, 10, 11));

}  // namespace
}  // namespace profisched
