// Unit tests for the EDF feasibility tests (paper eqs. 3–5).
#include "core/edf_feasibility.hpp"

#include <gtest/gtest.h>

namespace profisched {
namespace {

TEST(DemandBound, HandComputedRefined) {
  // C=2 D=4 T=6 and C=3 D=9 T=8.
  const TaskSet ts{{
      Task{.C = 2, .D = 4, .T = 6, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 8, .J = 0, .name = ""},
  }};
  EXPECT_EQ(demand_bound(ts, 0, Formulation::Refined), 0);
  EXPECT_EQ(demand_bound(ts, 3, Formulation::Refined), 0);
  EXPECT_EQ(demand_bound(ts, 4, Formulation::Refined), 2);   // one job of task 0
  EXPECT_EQ(demand_bound(ts, 9, Formulation::Refined), 5);   // + one of task 1
  EXPECT_EQ(demand_bound(ts, 10, Formulation::Refined), 7);  // second job of task 0 (D at 10)
  EXPECT_EQ(demand_bound(ts, 17, Formulation::Refined), 12);  // t0@4,10,16; t1@9,17
}

TEST(DemandBound, PaperLiteralMissesTheBoundaryJob) {
  const TaskSet ts{{Task{.C = 2, .D = 4, .T = 6, .J = 0, .name = ""}}};
  // At exactly t = D the literal ⌈(t−D)/T⌉⁺ counts zero jobs.
  EXPECT_EQ(demand_bound(ts, 4, Formulation::PaperLiteral), 0);
  EXPECT_EQ(demand_bound(ts, 4, Formulation::Refined), 2);
  // One tick later both agree again.
  EXPECT_EQ(demand_bound(ts, 5, Formulation::PaperLiteral), 2);
}

TEST(DemandBound, NonDecreasingInT) {
  const TaskSet ts{{
      Task{.C = 2, .D = 4, .T = 6, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 8, .J = 0, .name = ""},
  }};
  Ticks prev = 0;
  for (Ticks t = 0; t <= 100; ++t) {
    const Ticks h = demand_bound(ts, t);
    EXPECT_GE(h, prev) << "t=" << t;
    prev = h;
  }
}

TEST(DeadlineCheckpoints, EnumeratesKTiPlusDi) {
  const TaskSet ts{{
      Task{.C = 1, .D = 4, .T = 6, .J = 0, .name = ""},
      Task{.C = 1, .D = 9, .T = 8, .J = 0, .name = ""},
  }};
  const std::vector<Ticks> pts = deadline_checkpoints(ts, 25);
  EXPECT_EQ(pts, (std::vector<Ticks>{4, 9, 10, 16, 17, 22, 25}));
}

TEST(DeadlineCheckpoints, DeduplicatesCollisions) {
  const TaskSet ts{{
      Task{.C = 1, .D = 6, .T = 6, .J = 0, .name = ""},
      Task{.C = 1, .D = 6, .T = 6, .J = 0, .name = ""},
  }};
  const std::vector<Ticks> pts = deadline_checkpoints(ts, 12);
  EXPECT_EQ(pts, (std::vector<Ticks>{6, 12}));
}

TEST(EdfPreemptive, AcceptsFullUtilizationImplicitDeadlines) {
  const TaskSet ts{{
      Task{.C = 1, .D = 2, .T = 2, .J = 0, .name = ""},
      Task{.C = 2, .D = 4, .T = 4, .J = 0, .name = ""},
  }};  // U = 1 — EDF-schedulable
  EXPECT_TRUE(edf_preemptive_feasible(ts).feasible);
}

TEST(EdfPreemptive, RejectsOverUtilization) {
  const TaskSet ts{{
      Task{.C = 3, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
  }};
  const FeasibilityResult r = edf_preemptive_feasible(ts);
  EXPECT_FALSE(r.feasible);
}

TEST(EdfPreemptive, ConstrainedDeadlineViolationDetected) {
  // U < 1 but both deadlines at 3 while total demand by 3 is 4.
  const TaskSet ts{{
      Task{.C = 2, .D = 3, .T = 10, .J = 0, .name = ""},
      Task{.C = 2, .D = 3, .T = 10, .J = 0, .name = ""},
  }};
  const FeasibilityResult r = edf_preemptive_feasible(ts);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.first_violation, 3);
}

TEST(EdfPreemptive, ReportsCheckpointsAndHorizon) {
  const TaskSet ts{{
      Task{.C = 2, .D = 4, .T = 6, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 8, .J = 0, .name = ""},
  }};
  const FeasibilityResult r = edf_preemptive_feasible(ts);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.checkpoints, 0u);
  EXPECT_GT(r.horizon, 0);
}

TEST(EdfPreemptive, EmptySetFeasible) {
  EXPECT_TRUE(edf_preemptive_feasible(TaskSet{}).feasible);
}

TEST(NpEdfZhengShin, BlockingByLongestTaskEverywhere) {
  // Feasible preemptively but the +max C blocking breaks the tight deadline:
  // t0: C=1 D=2 T=10, t1: C=5 D=50 T=50. At t=2: h=1, +max C=5 → 6 > 2.
  const TaskSet ts{{
      Task{.C = 1, .D = 2, .T = 10, .J = 0, .name = ""},
      Task{.C = 5, .D = 50, .T = 50, .J = 0, .name = ""},
  }};
  EXPECT_TRUE(edf_preemptive_feasible(ts).feasible);
  EXPECT_FALSE(np_edf_feasible_zheng_shin(ts).feasible);
}

TEST(NpEdfGeorge, LessPessimisticThanZhengShin) {
  // George's refinement (eq. 5): at large t no task has D > t, so blocking
  // vanishes; Zheng–Shin keeps charging max C forever. Construct a set
  // Zheng–Shin rejects and George accepts: blocking C−1 = 4 at t = 6 needs
  // h(6) + 4 <= 6 … t0: C=2 D=6 T=12, t1: C=5 D=12 T=12.
  //   George @6:  h=2, blocking (D=12>6): 4 → 6 <= 6 ✓
  //          @12: h=7, blocking 0 → 7 <= 12 ✓
  //   Zheng–Shin @6: 2 + 5 = 7 > 6 ✗
  const TaskSet ts{{
      Task{.C = 2, .D = 6, .T = 12, .J = 0, .name = ""},
      Task{.C = 5, .D = 12, .T = 12, .J = 0, .name = ""},
  }};
  EXPECT_FALSE(np_edf_feasible_zheng_shin(ts).feasible);
  EXPECT_TRUE(np_edf_feasible_george(ts).feasible);
}

TEST(NpEdfGeorge, RejectsGenuineOverload) {
  const TaskSet ts{{
      Task{.C = 3, .D = 4, .T = 8, .J = 0, .name = ""},
      Task{.C = 3, .D = 4, .T = 8, .J = 0, .name = ""},
  }};  // demand 6 by t=4 even preemptively
  EXPECT_FALSE(np_edf_feasible_george(ts).feasible);
}

TEST(NpEdfTests, GeorgeAcceptsWhateverZhengShinAccepts) {
  // Dominance on a deterministic grid of two-task sets.
  for (Ticks c1 = 1; c1 <= 4; ++c1) {
    for (Ticks c2 = 1; c2 <= 6; ++c2) {
      for (Ticks d1 = c1; d1 <= 12; d1 += 3) {
        const TaskSet ts{{
            Task{.C = c1, .D = d1, .T = 12, .J = 0, .name = ""},
            Task{.C = c2, .D = 14, .T = 14, .J = 0, .name = ""},
        }};
        if (np_edf_feasible_zheng_shin(ts).feasible) {
          EXPECT_TRUE(np_edf_feasible_george(ts).feasible)
              << "c1=" << c1 << " c2=" << c2 << " d1=" << d1;
        }
      }
    }
  }
}

// Parameterized: the refined demand function dominates the paper-literal one
// pointwise, so literal-feasible ⊇ refined-feasible (the literal form is
// *optimistic*, which is exactly why DESIGN.md defaults to Refined).
class FormulationSweep : public ::testing::TestWithParam<Ticks> {};

TEST_P(FormulationSweep, LiteralDemandNeverExceedsRefined) {
  const Ticks d = GetParam();
  const TaskSet ts{{
      Task{.C = 2, .D = d, .T = 10, .J = 0, .name = ""},
      Task{.C = 3, .D = d + 4, .T = 14, .J = 0, .name = ""},
  }};
  for (Ticks t = 0; t <= 60; ++t) {
    EXPECT_LE(demand_bound(ts, t, Formulation::PaperLiteral),
              demand_bound(ts, t, Formulation::Refined))
        << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Deadlines, FormulationSweep, ::testing::Values(2, 4, 6, 8, 10));

}  // namespace
}  // namespace profisched
