// Unit tests for the policy façade.
#include "core/schedulability.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace profisched {
namespace {

TaskSet classic() {
  return TaskSet{{
      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = ""},
      Task{.C = 3, .D = 12, .T = 12, .J = 0, .name = ""},
      Task{.C = 5, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
}

TEST(PolicyNames, Stable) {
  EXPECT_EQ(to_string(Policy::RateMonotonic), "RM");
  EXPECT_EQ(to_string(Policy::DeadlineMonotonic), "DM");
  EXPECT_EQ(to_string(Policy::NpDeadlineMonotonic), "NP-DM");
  EXPECT_EQ(to_string(Policy::Edf), "EDF");
  EXPECT_EQ(to_string(Policy::NpEdf), "NP-EDF");
}

TEST(Analyze, RmMatchesDirectAnalysisOnImplicitDeadlines) {
  const TaskSet ts = classic();
  const Verdict v = analyze(ts, Policy::RateMonotonic);
  EXPECT_TRUE(v.schedulable);
  EXPECT_EQ(v.per_task[0].response, 3);
  EXPECT_EQ(v.per_task[1].response, 6);
  EXPECT_EQ(v.per_task[2].response, 20);
}

TEST(Analyze, AllPoliciesReturnOneVerdictEach) {
  const std::vector<Verdict> all = analyze_all_policies(classic());
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].policy, Policy::RateMonotonic);
  EXPECT_EQ(all[4].policy, Policy::NpEdf);
  for (const Verdict& v : all) EXPECT_EQ(v.per_task.size(), 3u);
}

TEST(Analyze, EdfSchedulesWhatFpCannot) {
  // Non-harmonic near-saturation: RM's R2 = 8 > 7 while U ≈ 0.971 <= 1.
  const TaskSet ts{{
      Task{.C = 2, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 4, .D = 7, .T = 7, .J = 0, .name = ""},
  }};
  EXPECT_FALSE(analyze(ts, Policy::RateMonotonic).schedulable);
  EXPECT_TRUE(analyze(ts, Policy::Edf).schedulable);
}

TEST(Analyze, PreemptiveDominatesNonPreemptiveVerdicts) {
  // Any set NP-DM schedules, preemptive DM schedules too (blocking only adds).
  const TaskSet ts{{
      Task{.C = 1, .D = 4, .T = 4, .J = 0, .name = ""},
      Task{.C = 1, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  ASSERT_TRUE(analyze(ts, Policy::NpDeadlineMonotonic).schedulable);
  EXPECT_TRUE(analyze(ts, Policy::DeadlineMonotonic).schedulable);
}

TEST(WorstNormalizedResponse, ComputesMaxRatio) {
  const TaskSet ts = classic();
  const Verdict v = analyze(ts, Policy::RateMonotonic);
  EXPECT_DOUBLE_EQ(v.worst_normalized_response(ts), 1.0);  // R3/D3 = 20/20
}

TEST(WorstNormalizedResponse, InfinityOnDivergence) {
  const TaskSet ts{{
      Task{.C = 5, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
  }};  // U > 1
  const Verdict v = analyze(ts, Policy::RateMonotonic);
  EXPECT_TRUE(std::isinf(v.worst_normalized_response(ts)));
}

TEST(Analyze, FormulationIsRespectedForNpDm) {
  const TaskSet ts{{
      Task{.C = 1, .D = 4, .T = 4, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  const Verdict lit = analyze(ts, Policy::NpDeadlineMonotonic, Formulation::PaperLiteral);
  const Verdict ref = analyze(ts, Policy::NpDeadlineMonotonic, Formulation::Refined);
  EXPECT_GE(lit.per_task[0].response, ref.per_task[0].response);
  EXPECT_EQ(lit.per_task[0].response, 4);  // B=3 literal
  EXPECT_EQ(ref.per_task[0].response, 3);  // B=2 refined
}

}  // namespace
}  // namespace profisched
