// SIMD kernel suite: the lane kernels (scalar-lane instantiation and the
// runtime-dispatched backend, when one is active) must be bit-identical to
// the integer scalar helpers on in-contract inputs, fall back — never
// publish — on out-of-contract ones, and the full analyses must produce
// identical verdicts, WCRTs and iteration counts with the vector path forced
// off versus on, over randomized sweeps per policy.
#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/busy_period.hpp"
#include "core/edf_feasibility.hpp"
#include "core/priority_assignment.hpp"
#include "core/response_time_edf.hpp"
#include "core/response_time_fp.hpp"
#include "core/simd.hpp"
#include "core/taskset_view.hpp"
#include "sim/rng.hpp"
#include "workload/generators.hpp"

namespace profisched {
namespace {

using simd::Kernels;
using simd::Status;

/// Restores the dispatch override on scope exit so a failing assertion never
/// leaks force_scalar(true) into later tests.
struct ScalarGuard {
  explicit ScalarGuard(bool on) { simd::force_scalar(on); }
  ~ScalarGuard() { simd::force_scalar(false); }
};

/// Kernel tables worth exercising: the portable scalar-lane instantiation is
/// always present; the dispatched backend (AVX2/NEON) is added when the build
/// and CPU provide one.
std::vector<const Kernels*> tables_under_test() {
  std::vector<const Kernels*> ks{&simd::scalar_lane_kernels()};
  if (const Kernels* k = simd::active(); k != nullptr) ks.push_back(k);
  return ks;
}

/// In-contract hand-built SoA fixture (0 ≤ C ≤ T, magnitudes ≤ kMaxValue),
/// padded to a lane multiple with neutral slots exactly as the arena pads.
struct Soa {
  std::vector<Ticks> C, T, D, J;
  std::vector<double> recip;
  std::size_t n = 0;

  explicit Soa(std::vector<std::array<Ticks, 4>> rows) : n(rows.size()) {
    const std::size_t np = (n + 3) & ~std::size_t{3};
    for (const auto& [c, t, d, j] : rows) {
      C.push_back(c);
      T.push_back(t);
      D.push_back(d);
      J.push_back(j);
    }
    for (std::size_t p = n; p < np; ++p) {
      C.push_back(0);
      T.push_back(1);
      D.push_back(0);
      J.push_back(0);
    }
    for (const Ticks t : T) recip.push_back(1.0 / static_cast<double>(t));
  }
  [[nodiscard]] std::size_t padded() const { return T.size(); }
};

Ticks ref_jobs(Ticks a, Ticks t, bool ceil_form) {
  return ceil_form ? ceil_div_plus(a, t) : floor_div_plus1(a, t);
}

/// The integer reference of the fp_fixed_point recurrence.
simd::FixedPointResult ref_fixed_point(const Soa& s, Ticks base, Ticks w0, bool ceil_form,
                                       int fuel) {
  simd::FixedPointResult out;
  out.status = Status::kOk;
  Ticks w = w0;
  for (int it = 0; it < fuel; ++it) {
    out.last = w;
    Ticks sum = 0;
    for (std::size_t j = 0; j < s.n; ++j) {
      sum = sat_add(sum, sat_mul(ref_jobs(sat_add(w, s.J[j]), s.T[j], ceil_form), s.C[j]));
    }
    const Ticks next = sat_add(base, sum);
    out.iterations = it + 1;
    if (next == w) {
      out.converged = true;
      out.value = w;
      return out;
    }
    if (next == kNoBound) return out;
    w = next;
  }
  return out;
}

Ticks ref_demand(const Soa& s, Ticks t, bool ceil_form) {
  Ticks h = 0;
  for (std::size_t j = 0; j < s.n; ++j) {
    h = sat_add(h, sat_mul(ref_jobs(t - s.D[j], s.T[j], ceil_form), s.C[j]));
  }
  return h;
}

TEST(SimdKernels, FixedPointMatchesIntegerReference) {
  const Soa s({{3, 10, 10, 0}, {4, 15, 12, 2}, {7, 35, 30, 0}, {5, 50, 50, 5}, {2, 9, 9, 1}});
  for (const Kernels* k : tables_under_test()) {
    for (const bool ceil_form : {true, false}) {
      for (const Ticks base : {Ticks{0}, Ticks{6}}) {
        for (const Ticks w0 : {Ticks{1}, Ticks{13}}) {
          const auto ref = ref_fixed_point(s, base, w0, ceil_form, 256);
          const auto got = k->fp_fixed_point(s.C.data(), s.T.data(), s.J.data(), s.recip.data(),
                                             s.padded(), base, w0, ceil_form, 256);
          ASSERT_EQ(got.status, Status::kOk) << k->name;
          EXPECT_EQ(got.converged, ref.converged) << k->name;
          EXPECT_EQ(got.value, ref.value) << k->name;
          EXPECT_EQ(got.last, ref.last) << k->name;
          EXPECT_EQ(got.iterations, ref.iterations) << k->name;
        }
      }
    }
  }
}

TEST(SimdKernels, DemandSumAndGridMatchIntegerReference) {
  const Soa s({{3, 10, 8, 0}, {4, 15, 15, 0}, {7, 35, 20, 0}, {5, 50, 45, 0},
               {2, 9, 9, 0},  {1, 4, 3, 0}});
  for (const Kernels* k : tables_under_test()) {
    for (const bool ceil_form : {true, false}) {
      const Ticks t4[4] = {0, 8, 37, 1000};
      const auto grid =
          k->demand_grid(s.C.data(), s.T.data(), s.D.data(), s.recip.data(), s.n, t4, ceil_form);
      ASSERT_EQ(grid.status, Status::kOk) << k->name;
      for (int b = 0; b < 4; ++b) {
        const Ticks ref = ref_demand(s, t4[b], ceil_form);
        EXPECT_EQ(grid.demand[b], ref) << k->name << " t=" << t4[b];
        const auto one = k->demand_sum(s.C.data(), s.T.data(), s.D.data(), s.recip.data(),
                                       s.padded(), t4[b], ceil_form);
        ASSERT_EQ(one.status, Status::kOk) << k->name;
        EXPECT_EQ(one.demand, ref) << k->name << " t=" << t4[b];
      }
    }
  }
}

TEST(SimdKernels, PaddingSlotsAreNeutral) {
  // The same logical set evaluated at the logical count and at the padded
  // count must agree: C=0/T=1 slots contribute exactly zero.
  const Soa s({{3, 10, 10, 0}, {4, 15, 12, 0}, {7, 35, 30, 3}});
  ASSERT_NE(s.n, s.padded());
  for (const Kernels* k : tables_under_test()) {
    const auto a = k->fp_fixed_point(s.C.data(), s.T.data(), s.J.data(), s.recip.data(), s.n, 0,
                                     1, true, 256);
    const auto b = k->fp_fixed_point(s.C.data(), s.T.data(), s.J.data(), s.recip.data(),
                                     s.padded(), 0, 1, true, 256);
    ASSERT_EQ(a.status, Status::kOk);
    ASSERT_EQ(b.status, Status::kOk);
    EXPECT_EQ(a.value, b.value) << k->name;
    EXPECT_EQ(a.iterations, b.iterations) << k->name;
    const auto da = k->demand_sum(s.C.data(), s.T.data(), s.D.data(), s.recip.data(), s.n, 500,
                                  true);
    const auto db = k->demand_sum(s.C.data(), s.T.data(), s.D.data(), s.recip.data(), s.padded(),
                                  500, true);
    EXPECT_EQ(da.demand, db.demand) << k->name;
  }
}

TEST(SimdKernels, EntryGuardsReportFallbackWithoutPublishing) {
  const Soa s({{3, 10, 10, 0}, {4, 15, 12, 0}, {7, 35, 30, 0}, {5, 50, 50, 0}});
  const Ticks over = simd::kMaxAccum + 1;
  for (const Kernels* k : tables_under_test()) {
    EXPECT_EQ(k->fp_fixed_point(s.C.data(), s.T.data(), s.J.data(), s.recip.data(), s.padded(),
                                over, 1, true, 64)
                  .status,
              Status::kFallback)
        << k->name << " base over kMaxAccum";
    EXPECT_EQ(k->fp_fixed_point(s.C.data(), s.T.data(), s.J.data(), s.recip.data(), s.padded(), 0,
                                over, true, 64)
                  .status,
              Status::kFallback)
        << k->name << " w0 over kMaxAccum";
    EXPECT_EQ(k->demand_sum(s.C.data(), s.T.data(), s.D.data(), s.recip.data(), s.padded(), -1,
                            true)
                  .status,
              Status::kFallback)
        << k->name << " negative t";
    const Ticks bad4[4] = {0, 1, 2, over};
    EXPECT_EQ(k->demand_grid(s.C.data(), s.T.data(), s.D.data(), s.recip.data(), s.n, bad4, true)
                  .status,
              Status::kFallback)
        << k->name << " checkpoint over kMaxAccum";
    EXPECT_EQ(k->edf_offset_fixed_point(s.C.data(), s.T.data(), s.D.data(), s.J.data(),
                                        s.recip.data(), s.padded(), /*self=*/s.padded(), 100, 0,
                                        0, false, 64)
                  .status,
              Status::kFallback)
        << k->name << " self out of range";
  }
}

TEST(SimdKernels, IterateGateTripsBeforeLeavingExactRegion) {
  // U > 1 with tiny periods: iterates grow geometrically and cross kMaxAccum
  // long before kNoBound — the kernel must hand the divergence decision back
  // to the exact scalar reference instead of publishing a saturated result.
  const Soa s({{1, 1, 1, 0}, {1, 1, 1, 0}});
  for (const Kernels* k : tables_under_test()) {
    const auto r = k->fp_fixed_point(s.C.data(), s.T.data(), s.J.data(), s.recip.data(),
                                     s.padded(), 1, 1, true, 1 << 16);
    EXPECT_EQ(r.status, Status::kFallback) << k->name;
  }
}

TEST(SimdKernels, BindGateRejectsOversizedMagnitudes) {
  // Near-saturation task parameters exceed kMaxValue, so the arena must mark
  // the view simd_ok == false and the analyses silently take the exact
  // scalar paths — verdicts at the INT64 boundary never come from lanes.
  const Ticks huge = kNoBound / 4;
  const TaskSet ts{{
      Task{.C = huge / 2, .D = huge, .T = huge, .J = 0, .name = ""},
      Task{.C = 3, .D = 10, .T = 10, .J = 0, .name = ""},
  }};
  RtaScratch scratch;
  const TaskSetView& v = scratch.arena.bind(ts);
  EXPECT_FALSE(v.simd_ok);

  const PriorityOrder order = rate_monotonic_order(ts);
  ScalarGuard off(false);
  const FpAnalysis vec = analyze_preemptive_fp(ts, order, 1 << 16, scratch);
  simd::force_scalar(true);
  const FpAnalysis ref = analyze_preemptive_fp(ts, order, 1 << 16, scratch);
  ASSERT_EQ(vec.per_task.size(), ref.per_task.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(vec.per_task[i].response, ref.per_task[i].response);
    EXPECT_EQ(vec.per_task[i].iterations, ref.per_task[i].iterations);
  }
}

TEST(SimdKernels, RecipCacheSurvivesRebindWithNewExecutionTimes) {
  // A utilization sweep rebinds the same periods with scaled C — the cached
  // reciprocals must keep the kernels exact across the rebind.
  RtaScratch scratch;
  std::vector<Task> tasks;
  for (Ticks c : {Ticks{2}, Ticks{5}, Ticks{3}, Ticks{8}, Ticks{4}}) {
    tasks.push_back(Task{.C = c, .D = 20 * c, .T = 20 * c, .J = 0, .name = ""});
  }
  for (const Ticks bump : {Ticks{0}, Ticks{1}, Ticks{3}}) {
    std::vector<Task> scaled = tasks;
    for (Task& t : scaled) t.C += bump;
    const TaskSet ts{scaled};
    const PriorityOrder order = rate_monotonic_order(ts);
    ScalarGuard off(false);
    const FpAnalysis vec = analyze_preemptive_fp(ts, order, 1 << 16, scratch);
    simd::force_scalar(true);
    const FpAnalysis ref = analyze_preemptive_fp(ts, order, 1 << 16, scratch);
    simd::force_scalar(false);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      EXPECT_EQ(vec.per_task[i].response, ref.per_task[i].response) << "bump " << bump;
      EXPECT_EQ(vec.per_task[i].iterations, ref.per_task[i].iterations) << "bump " << bump;
    }
  }
}

// ------------------------------------------------ randomized vector/scalar

constexpr std::uint64_t kRandomSets = 500;

/// Randomized set spanning convergent, divergent and degenerate regimes
/// (U up to 1.15, constrained deadlines, occasional jitter).
TaskSet random_set(std::uint64_t seed) {
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  workload::TaskSetParams p;
  p.n = 2 + static_cast<std::size_t>(rng.uniform(0, 14));
  p.total_u = 0.3 + 0.85 * rng.uniform01();
  p.deadline_lo = 0.6 + 0.2 * rng.uniform01();
  p.deadline_hi = 1.0 + 0.2 * rng.uniform01();
  p.jitter_max = (seed % 3 == 0) ? 200 : 0;
  return workload::random_task_set(p, rng);
}

void expect_same_rta(const RtaResult& sc, const RtaResult& vec, std::uint64_t seed,
                     std::size_t task) {
  EXPECT_EQ(sc.converged, vec.converged) << "seed " << seed << " task " << task;
  EXPECT_EQ(sc.response, vec.response) << "seed " << seed << " task " << task;
  EXPECT_EQ(sc.iterations, vec.iterations) << "seed " << seed << " task " << task;
}

TEST(SimdKernels, RandomizedFpSweepIdenticalScalarVsVector) {
  RtaScratch scratch;
  ScalarGuard guard(false);
  for (std::uint64_t seed = 1; seed <= kRandomSets; ++seed) {
    const TaskSet ts = random_set(seed);
    const PriorityOrder rm = rate_monotonic_order(ts);
    const PriorityOrder dm = deadline_monotonic_order(ts);
    simd::force_scalar(false);
    const FpAnalysis p_vec = analyze_preemptive_fp(ts, rm, 1 << 16, scratch);
    const FpAnalysis n_vec =
        analyze_nonpreemptive_fp(ts, dm, Formulation::PaperLiteral, 1 << 16, scratch);
    const FpAnalysis r_vec =
        analyze_nonpreemptive_fp(ts, dm, Formulation::Refined, 1 << 16, scratch);
    simd::force_scalar(true);
    const FpAnalysis p_sc = analyze_preemptive_fp(ts, rm, 1 << 16, scratch);
    const FpAnalysis n_sc =
        analyze_nonpreemptive_fp(ts, dm, Formulation::PaperLiteral, 1 << 16, scratch);
    const FpAnalysis r_sc =
        analyze_nonpreemptive_fp(ts, dm, Formulation::Refined, 1 << 16, scratch);
    EXPECT_EQ(p_sc.schedulable, p_vec.schedulable) << "seed " << seed;
    EXPECT_EQ(n_sc.schedulable, n_vec.schedulable) << "seed " << seed;
    EXPECT_EQ(r_sc.schedulable, r_vec.schedulable) << "seed " << seed;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      expect_same_rta(p_sc.per_task[i], p_vec.per_task[i], seed, i);
      expect_same_rta(n_sc.per_task[i], n_vec.per_task[i], seed, i);
      expect_same_rta(r_sc.per_task[i], r_vec.per_task[i], seed, i);
    }
  }
}

TEST(SimdKernels, RandomizedEdfSweepIdenticalScalarVsVector) {
  RtaScratch scratch;
  ScalarGuard guard(false);
  const EdfRtaOptions opt;
  for (std::uint64_t seed = 1; seed <= kRandomSets; ++seed) {
    const TaskSet ts = random_set(seed);
    for (const bool preemptive : {true, false}) {
      simd::force_scalar(false);
      const EdfAnalysis vec = preemptive ? analyze_preemptive_edf(ts, opt, scratch)
                                         : analyze_nonpreemptive_edf(ts, opt, scratch);
      simd::force_scalar(true);
      const EdfAnalysis sc = preemptive ? analyze_preemptive_edf(ts, opt, scratch)
                                        : analyze_nonpreemptive_edf(ts, opt, scratch);
      EXPECT_EQ(sc.schedulable, vec.schedulable) << "seed " << seed;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_EQ(sc.per_task[i].converged, vec.per_task[i].converged)
            << "seed " << seed << " task " << i << " preemptive " << preemptive;
        EXPECT_EQ(sc.per_task[i].response, vec.per_task[i].response)
            << "seed " << seed << " task " << i << " preemptive " << preemptive;
        EXPECT_EQ(sc.per_task[i].critical_offset, vec.per_task[i].critical_offset)
            << "seed " << seed << " task " << i << " preemptive " << preemptive;
        EXPECT_EQ(sc.per_task[i].offsets_examined, vec.per_task[i].offsets_examined)
            << "seed " << seed << " task " << i << " preemptive " << preemptive;
      }
    }
  }
}

TEST(SimdKernels, RandomizedFeasibilityAndBusyPeriodIdenticalScalarVsVector) {
  RtaScratch scratch;
  ScalarGuard guard(false);
  for (std::uint64_t seed = 1; seed <= kRandomSets; ++seed) {
    const TaskSet ts = random_set(seed);
    for (const Formulation form : {Formulation::PaperLiteral, Formulation::Refined}) {
      simd::force_scalar(false);
      const FeasibilityResult pe_vec = edf_preemptive_feasible(ts, form, scratch);
      const FeasibilityResult zs_vec = np_edf_feasible_zheng_shin(ts, form, scratch);
      const FeasibilityResult ge_vec = np_edf_feasible_george(ts, form, scratch);
      const BusyPeriod bp_vec = synchronous_busy_period(scratch.arena.bind(ts));
      simd::force_scalar(true);
      const FeasibilityResult pe_sc = edf_preemptive_feasible(ts, form, scratch);
      const FeasibilityResult zs_sc = np_edf_feasible_zheng_shin(ts, form, scratch);
      const FeasibilityResult ge_sc = np_edf_feasible_george(ts, form, scratch);
      const BusyPeriod bp_sc = synchronous_busy_period(scratch.arena.bind(ts));
      EXPECT_EQ(pe_sc.feasible, pe_vec.feasible) << "seed " << seed;
      EXPECT_EQ(pe_sc.first_violation, pe_vec.first_violation) << "seed " << seed;
      EXPECT_EQ(pe_sc.checkpoints, pe_vec.checkpoints) << "seed " << seed;
      EXPECT_EQ(zs_sc.feasible, zs_vec.feasible) << "seed " << seed;
      EXPECT_EQ(zs_sc.first_violation, zs_vec.first_violation) << "seed " << seed;
      EXPECT_EQ(ge_sc.feasible, ge_vec.feasible) << "seed " << seed;
      EXPECT_EQ(ge_sc.first_violation, ge_vec.first_violation) << "seed " << seed;
      EXPECT_EQ(bp_sc.length, bp_vec.length) << "seed " << seed;
      EXPECT_EQ(bp_sc.iterations, bp_vec.iterations) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace profisched
