// Warm-start utilization-sweep regression: warm and cold runs must agree on
// every verdict and bound (the warm seeds only shorten the monotone
// iterations), warm must never iterate more, and the scaling helper must be
// exact-integer monotone.
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/usweep.hpp"
#include "sim/rng.hpp"
#include "workload/generators.hpp"

namespace profisched {
namespace {

TaskSet random_base(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed * 7919 + 3);
  workload::TaskSetParams p;
  p.n = n;
  p.total_u = 0.5;
  p.deadline_lo = 0.8;
  p.deadline_hi = 1.1;
  p.jitter_max = (seed % 2 == 0) ? 100 : 0;
  return workload::random_task_set(p, rng);
}

USweepSpec grid_spec(std::size_t points, double lo, double hi) {
  USweepSpec spec;
  for (std::size_t k = 0; k < points; ++k) {
    spec.u_grid.push_back(lo + (hi - lo) * static_cast<double>(k) /
                                   static_cast<double>(points - 1));
  }
  return spec;
}

TEST(USweep, WarmMatchesColdEverywhere) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const TaskSet base = random_base(seed, 4 + seed % 8);
    USweepSpec spec = grid_spec(24, 0.35, 1.05);  // crosses every breakdown point
    spec.warm_start = false;
    const USweepResult cold = run_usweep(base, spec);
    spec.warm_start = true;
    const USweepResult warm = run_usweep(base, spec);

    ASSERT_EQ(cold.points.size(), warm.points.size());
    for (std::size_t k = 0; k < cold.points.size(); ++k) {
      EXPECT_EQ(cold.points[k].u_actual, warm.points[k].u_actual);
      ASSERT_EQ(cold.points[k].cells.size(), warm.points[k].cells.size());
      for (std::size_t c = 0; c < cold.points[k].cells.size(); ++c) {
        EXPECT_EQ(cold.points[k].cells[c].schedulable, warm.points[k].cells[c].schedulable)
            << "seed " << seed << " point " << k << " policy " << c;
        EXPECT_EQ(cold.points[k].cells[c].worst_response,
                  warm.points[k].cells[c].worst_response)
            << "seed " << seed << " point " << k << " policy " << c;
      }
    }
    // Warm-start must never do more fixed-point work than cold.
    EXPECT_LE(warm.fp_iterations, cold.fp_iterations) << "seed " << seed;
    EXPECT_LE(warm.busy_iterations, cold.busy_iterations) << "seed " << seed;
  }
}

TEST(USweep, WarmStartActuallySavesIterationsOnFineGrids) {
  const TaskSet base = random_base(7, 12);
  USweepSpec spec = grid_spec(60, 0.5, 0.99);
  spec.policies = {Policy::RateMonotonic, Policy::DeadlineMonotonic,
                   Policy::NpDeadlineMonotonic};
  spec.warm_start = false;
  const USweepResult cold = run_usweep(base, spec);
  spec.warm_start = true;
  const USweepResult warm = run_usweep(base, spec);
  EXPECT_LT(warm.fp_iterations, cold.fp_iterations);
}

TEST(USweep, ScalingIsMonotoneExactAndValid) {
  const TaskSet base = random_base(11, 10);
  Ticks prev_total = 0;
  for (double u = 0.2; u <= 1.2; u += 0.05) {
    const TaskSet scaled = scale_to_utilization(base, u);
    ASSERT_EQ(scaled.size(), base.size());
    Ticks total = 0;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      EXPECT_EQ(scaled[i].T, base[i].T);
      EXPECT_EQ(scaled[i].D, base[i].D);
      EXPECT_EQ(scaled[i].J, base[i].J);
      EXPECT_GE(scaled[i].C, 1);
      EXPECT_LE(scaled[i].C, std::min(base[i].T, base[i].D));
      total += scaled[i].C;
    }
    EXPECT_GE(total, prev_total) << "u " << u;  // C grows monotonically with u
    prev_total = total;
    scaled.validate();  // throws on any violated invariant
  }
}

TEST(USweep, TracksRequestedUtilization) {
  const TaskSet base = random_base(13, 12);
  const TaskSet scaled = scale_to_utilization(base, 0.8);
  // Integer rounding and per-task clamping bound the error by one tick per
  // task; with generated periods >= 100 that is at most n/100.
  EXPECT_NEAR(scaled.utilization(), 0.8, 0.15);
}

TEST(USweep, RejectsBadSpecs) {
  const TaskSet base = random_base(17, 5);
  USweepSpec empty_grid;
  EXPECT_THROW((void)run_usweep(base, empty_grid), std::invalid_argument);

  USweepSpec descending = grid_spec(4, 0.3, 0.9);
  std::swap(descending.u_grid.front(), descending.u_grid.back());
  EXPECT_THROW((void)run_usweep(base, descending), std::invalid_argument);

  USweepSpec no_policies = grid_spec(4, 0.3, 0.9);
  no_policies.policies.clear();
  EXPECT_THROW((void)run_usweep(base, no_policies), std::invalid_argument);

  EXPECT_THROW((void)run_usweep(TaskSet{}, grid_spec(4, 0.3, 0.9)), std::invalid_argument);
}

}  // namespace
}  // namespace profisched
