// Unit tests for the sensitivity analyses (scaling headroom, sustainable
// deadlines, breakdown utilization), on the unified SensitivityResult API.
#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

namespace profisched {
namespace {

TaskSet classic() {
  return TaskSet{{
      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = ""},
      Task{.C = 3, .D = 12, .T = 12, .J = 0, .name = ""},
      Task{.C = 5, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
}

TEST(Sensitivity, UnschedulableSetHasNoHeadroom) {
  const TaskSet ts{{
      Task{.C = 5, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
  }};
  const auto test = test_for(Policy::DeadlineMonotonic);
  EXPECT_FALSE(sensitivity::breakdown_scaling(ts, test).feasible);
  EXPECT_FALSE(sensitivity::execution_scaling_headroom(ts, 0, test).feasible);
}

TEST(Sensitivity, SchedulableSetHasAtLeastFactorOne) {
  const TaskSet ts = classic();
  const auto test = test_for(Policy::DeadlineMonotonic);
  const auto q = sensitivity::breakdown_scaling(ts, test);
  ASSERT_TRUE(q.feasible);
  EXPECT_GE(q.value, sensitivity::kScaleOne);
}

TEST(Sensitivity, BoundaryIsExactToOneStep) {
  // The classic set is exactly at its breakdown point: R3 = 20 = D3, so any
  // uniform growth breaks it. q must be exactly 1024 (factor 1.0 — C values
  // scale by ceil, so even 1025/1024 bumps some C by a tick… unless all Cs
  // stay equal under rounding; accept q in [1024, 1024 + small]).
  const TaskSet ts = classic();
  const auto test = test_for(Policy::DeadlineMonotonic);
  const auto q = sensitivity::breakdown_scaling(ts, test);
  ASSERT_TRUE(q.feasible);
  // Verify exactness directly: scaling by q keeps it schedulable, +1 flips
  // it or leaves C unchanged by rounding.
  EXPECT_TRUE(test(ts));
  EXPECT_LT(q.value, 2048);  // no 2x headroom in a set at its breakdown point
  EXPECT_FALSE(q.cap_hit);
}

TEST(Sensitivity, SingleTaskHeadroomAtLeastBreakdown) {
  // Growing one task can never be harder than growing all of them.
  const TaskSet ts{{
      Task{.C = 2, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 3, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
  const auto test = test_for(Policy::Edf);
  const auto all = sensitivity::breakdown_scaling(ts, test);
  ASSERT_TRUE(all.feasible);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto one = sensitivity::execution_scaling_headroom(ts, i, test);
    ASSERT_TRUE(one.feasible);
    EXPECT_GE(one.value, all.value) << "task " << i;
  }
}

TEST(Sensitivity, HeadroomCapRespected) {
  const TaskSet ts{{Task{.C = 1, .D = 1'000'000, .T = 1'000'000, .J = 0, .name = ""}}};
  const auto test = test_for(Policy::Edf);
  const auto q =
      sensitivity::execution_scaling_headroom(ts, 0, test, /*max_factor_q1024=*/4 * 1024);
  ASSERT_TRUE(q.feasible);
  EXPECT_EQ(q.value, 4 * 1024);  // capped, not unbounded
  EXPECT_TRUE(q.cap_hit);
}

TEST(Sensitivity, MinimumSustainableDeadlineExact) {
  // Single task under EDF: minimal D is exactly C.
  const TaskSet ts{{Task{.C = 7, .D = 50, .T = 50, .J = 0, .name = ""}}};
  const auto test = test_for(Policy::Edf);
  const auto d = sensitivity::minimum_sustainable_deadline(ts, 0, test);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.value, 7);
}

TEST(Sensitivity, MinimumDeadlineAccountsForInterference) {
  // Two tasks, DM: the lower-priority one's minimal D equals its worst-case
  // response time under the best achievable rank.
  const TaskSet ts{{
      Task{.C = 2, .D = 5, .T = 10, .J = 0, .name = "hp"},
      Task{.C = 3, .D = 40, .T = 40, .J = 0, .name = "lp"},
  }};
  const auto test = test_for(Policy::DeadlineMonotonic);
  const auto d = sensitivity::minimum_sustainable_deadline(ts, 1, test);
  ASSERT_TRUE(d.feasible);
  // With D1 below 5 it outranks "hp" (R = 3, but then hp gets R = 5 <= 5 ok):
  // D1 = 3 works: order (lp, hp): R_lp = 3 <= 3, R_hp = 2+3 = 5 <= 5. So 3.
  EXPECT_EQ(d.value, 3);
}

TEST(Sensitivity, BreakdownUtilizationBetweenCurrentAndOne) {
  const TaskSet ts{{
      Task{.C = 1, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 2, .D = 25, .T = 25, .J = 0, .name = ""},
  }};  // U = 0.18
  const auto test = test_for(Policy::Edf);
  const auto q = sensitivity::breakdown_scaling(ts, test);
  ASSERT_TRUE(q.feasible);
  const double u = sensitivity::utilization_at_scale(ts, q.value);
  EXPECT_GT(u, ts.utilization());
  EXPECT_LE(u, 1.0 + 1e-9);
  // Unscaled (q = 1024), utilization_at_scale reproduces the set's own U.
  EXPECT_DOUBLE_EQ(sensitivity::utilization_at_scale(ts, sensitivity::kScaleOne),
                   ts.utilization());
}

TEST(Sensitivity, EdfBreakdownHigherThanDm) {
  // EDF dominates fixed priorities, so its breakdown scaling is >= DM's.
  const TaskSet ts{{
      Task{.C = 2, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 2, .D = 7, .T = 7, .J = 0, .name = ""},
  }};
  const auto q_dm = sensitivity::breakdown_scaling(ts, test_for(Policy::DeadlineMonotonic));
  const auto q_edf = sensitivity::breakdown_scaling(ts, test_for(Policy::Edf));
  ASSERT_TRUE(q_dm.feasible && q_edf.feasible);
  EXPECT_GE(q_edf.value, q_dm.value);
}

}  // namespace
}  // namespace profisched
