// Unit tests for the sensitivity analyses (scaling headroom, sustainable
// deadlines, breakdown utilization).
#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

namespace profisched {
namespace {

TaskSet classic() {
  return TaskSet{{
      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = ""},
      Task{.C = 3, .D = 12, .T = 12, .J = 0, .name = ""},
      Task{.C = 5, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
}

TEST(Sensitivity, UnschedulableSetHasNoHeadroom) {
  const TaskSet ts{{
      Task{.C = 5, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
  }};
  const auto test = test_for(Policy::DeadlineMonotonic);
  EXPECT_FALSE(breakdown_scaling(ts, test).has_value());
  EXPECT_FALSE(execution_scaling_headroom(ts, 0, test).has_value());
  EXPECT_FALSE(breakdown_utilization(ts, test).has_value());
}

TEST(Sensitivity, SchedulableSetHasAtLeastFactorOne) {
  const TaskSet ts = classic();
  const auto test = test_for(Policy::DeadlineMonotonic);
  const auto q = breakdown_scaling(ts, test);
  ASSERT_TRUE(q.has_value());
  EXPECT_GE(*q, 1024);
}

TEST(Sensitivity, BoundaryIsExactToOneStep) {
  // The classic set is exactly at its breakdown point: R3 = 20 = D3, so any
  // uniform growth breaks it. q must be exactly 1024 (factor 1.0 — C values
  // scale by ceil, so even 1025/1024 bumps some C by a tick… unless all Cs
  // stay equal under rounding; accept q in [1024, 1024 + small]).
  const TaskSet ts = classic();
  const auto test = test_for(Policy::DeadlineMonotonic);
  const auto q = breakdown_scaling(ts, test);
  ASSERT_TRUE(q.has_value());
  // Verify exactness directly: scaling by *q keeps it schedulable, +1 flips
  // it or leaves C unchanged by rounding.
  EXPECT_TRUE(test(ts));
  EXPECT_LT(*q, 2048);  // no 2x headroom in a set at its breakdown point
}

TEST(Sensitivity, SingleTaskHeadroomAtLeastBreakdown) {
  // Growing one task can never be harder than growing all of them.
  const TaskSet ts{{
      Task{.C = 2, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 3, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
  const auto test = test_for(Policy::Edf);
  const auto all = breakdown_scaling(ts, test);
  ASSERT_TRUE(all.has_value());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto one = execution_scaling_headroom(ts, i, test);
    ASSERT_TRUE(one.has_value());
    EXPECT_GE(*one, *all) << "task " << i;
  }
}

TEST(Sensitivity, HeadroomCapRespected) {
  const TaskSet ts{{Task{.C = 1, .D = 1'000'000, .T = 1'000'000, .J = 0, .name = ""}}};
  const auto test = test_for(Policy::Edf);
  const auto q = execution_scaling_headroom(ts, 0, test, /*max_factor_q1024=*/4 * 1024);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, 4 * 1024);  // capped, not unbounded
}

TEST(Sensitivity, MinimumSustainableDeadlineExact) {
  // Single task under EDF: minimal D is exactly C.
  const TaskSet ts{{Task{.C = 7, .D = 50, .T = 50, .J = 0, .name = ""}}};
  const auto test = test_for(Policy::Edf);
  const auto d = minimum_sustainable_deadline(ts, 0, test);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 7);
}

TEST(Sensitivity, MinimumDeadlineAccountsForInterference) {
  // Two tasks, DM: the lower-priority one's minimal D equals its worst-case
  // response time under the best achievable rank.
  const TaskSet ts{{
      Task{.C = 2, .D = 5, .T = 10, .J = 0, .name = "hp"},
      Task{.C = 3, .D = 40, .T = 40, .J = 0, .name = "lp"},
  }};
  const auto test = test_for(Policy::DeadlineMonotonic);
  const auto d = minimum_sustainable_deadline(ts, 1, test);
  ASSERT_TRUE(d.has_value());
  // With D1 below 5 it outranks "hp" (R = 3, but then hp gets R = 5 <= 5 ok):
  // D1 = 3 works: order (lp, hp): R_lp = 3 <= 3, R_hp = 2+3 = 5 <= 5. So 3.
  EXPECT_EQ(*d, 3);
}

TEST(Sensitivity, BreakdownUtilizationBetweenCurrentAndOne) {
  const TaskSet ts{{
      Task{.C = 1, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 2, .D = 25, .T = 25, .J = 0, .name = ""},
  }};  // U = 0.18
  const auto test = test_for(Policy::Edf);
  const auto u = breakdown_utilization(ts, test);
  ASSERT_TRUE(u.has_value());
  EXPECT_GT(*u, ts.utilization());
  EXPECT_LE(*u, 1.0 + 1e-9);
}

TEST(Sensitivity, EdfBreakdownHigherThanDm) {
  // EDF dominates fixed priorities, so its breakdown scaling is >= DM's.
  const TaskSet ts{{
      Task{.C = 2, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 2, .D = 7, .T = 7, .J = 0, .name = ""},
  }};
  const auto q_dm = breakdown_scaling(ts, test_for(Policy::DeadlineMonotonic));
  const auto q_edf = breakdown_scaling(ts, test_for(Policy::Edf));
  ASSERT_TRUE(q_dm.has_value() && q_edf.has_value());
  EXPECT_GE(*q_edf, *q_dm);
}

}  // namespace
}  // namespace profisched
