// Unit tests for the fixed-priority response-time analyses (paper eqs. 1–2
// plus the preemptive Joseph–Pandya base).
#include "core/response_time_fp.hpp"

#include <gtest/gtest.h>

namespace profisched {
namespace {

// The classic Audsley et al. example set: R = {3, 6, 20} under RM/DM.
TaskSet classic() {
  return TaskSet{{
      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = "t1"},
      Task{.C = 3, .D = 12, .T = 12, .J = 0, .name = "t2"},
      Task{.C = 5, .D = 20, .T = 20, .J = 0, .name = "t3"},
  }};
}

TEST(PreemptiveRta, ClassicExample) {
  const TaskSet ts = classic();
  const PriorityOrder order = deadline_monotonic_order(ts);
  const FpAnalysis a = analyze_preemptive_fp(ts, order);
  ASSERT_TRUE(a.schedulable);
  EXPECT_EQ(a.per_task[0].response, 3);
  EXPECT_EQ(a.per_task[1].response, 6);
  EXPECT_EQ(a.per_task[2].response, 20);
}

TEST(PreemptiveRta, HighestPriorityTaskIsItsOwnC) {
  const TaskSet ts = classic();
  const RtaResult r = response_time_preemptive(ts, 0, {});
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, 3);
}

TEST(PreemptiveRta, DivergesWhenHigherPrioritySaturates) {
  const TaskSet ts{{
      Task{.C = 5, .D = 5, .T = 5, .J = 0, .name = "hog"},
      Task{.C = 1, .D = 100, .T = 100, .J = 0, .name = "victim"},
  }};
  const std::vector<std::size_t> hp{0};
  const RtaResult r = response_time_preemptive(ts, 1, hp, /*fuel=*/1000);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.response, kNoBound);
}

TEST(PreemptiveRta, JitterInflatesInterferenceAndOwnResponse) {
  const TaskSet no_jitter{{
      Task{.C = 2, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 3, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
  const TaskSet with_jitter{{
      Task{.C = 2, .D = 10, .T = 10, .J = 9, .name = ""},
      Task{.C = 3, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
  const std::vector<std::size_t> hp{0};
  const Ticks r0 = response_time_preemptive(no_jitter, 1, hp).response;   // 3+2 = 5
  const Ticks r1 = response_time_preemptive(with_jitter, 1, hp).response;
  EXPECT_EQ(r0, 5);
  // w = 3 + ⌈(w+9)/10⌉·2: w=5 → ⌈14/10⌉·2=4 → w=7 → ⌈16/10⌉·2 → 7 ✓
  EXPECT_EQ(r1, 7);
}

TEST(BlockingFactor, PaperLiteralTakesMaxLowerC) {
  const TaskSet ts = classic();
  const std::vector<std::size_t> lower{1, 2};
  EXPECT_EQ(blocking_factor(ts, lower, Formulation::PaperLiteral), 5);
  EXPECT_EQ(blocking_factor(ts, lower, Formulation::Refined), 4);  // C−1
}

TEST(BlockingFactor, EmptyLowerSetIsZero) {
  const TaskSet ts = classic();
  EXPECT_EQ(blocking_factor(ts, {}, Formulation::PaperLiteral), 0);
  EXPECT_EQ(blocking_factor(ts, {}, Formulation::Refined), 0);
}

// Hand-computed NP example (header comment of response_time_fp.hpp):
//   t1: C=1 T=D=4,  t2: C=1 T=D=5,  t3: C=3 T=D=9, DM order t1>t2>t3.
TEST(NonPreemptiveRta, HandComputedRefined) {
  const TaskSet ts{{
      Task{.C = 1, .D = 4, .T = 4, .J = 0, .name = ""},
      Task{.C = 1, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  const FpAnalysis a =
      analyze_nonpreemptive_fp(ts, deadline_monotonic_order(ts), Formulation::Refined);
  ASSERT_TRUE(a.schedulable);
  EXPECT_EQ(a.per_task[0].response, 3);  // B=2, w=2, +C=3
  EXPECT_EQ(a.per_task[1].response, 4);  // B=2, w=3, +C=4
  EXPECT_EQ(a.per_task[2].response, 5);  // B=0, w=2, +C=5
}

TEST(NonPreemptiveRta, HandComputedPaperLiteral) {
  const TaskSet ts{{
      Task{.C = 1, .D = 4, .T = 4, .J = 0, .name = ""},
      Task{.C = 1, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  const FpAnalysis a =
      analyze_nonpreemptive_fp(ts, deadline_monotonic_order(ts), Formulation::PaperLiteral);
  ASSERT_TRUE(a.schedulable);
  EXPECT_EQ(a.per_task[0].response, 4);  // B=3, w=3, +C=4
  EXPECT_EQ(a.per_task[1].response, 5);  // B=3, w=4 (⌈4/4⌉·1), +C=5
  EXPECT_EQ(a.per_task[2].response, 5);  // B=0, w=2, +C=5
}

TEST(NonPreemptiveRta, PaperLiteralNeverBelowRefined) {
  // The literal formulation is the more pessimistic of the two on every task
  // of this grid.
  for (Ticks c3 = 1; c3 <= 6; ++c3) {
    const TaskSet ts{{
        Task{.C = 1, .D = 6, .T = 6, .J = 0, .name = ""},
        Task{.C = 2, .D = 9, .T = 9, .J = 0, .name = ""},
        Task{.C = c3, .D = 30, .T = 30, .J = 0, .name = ""},
    }};
    const PriorityOrder order = deadline_monotonic_order(ts);
    const FpAnalysis lit = analyze_nonpreemptive_fp(ts, order, Formulation::PaperLiteral);
    const FpAnalysis ref = analyze_nonpreemptive_fp(ts, order, Formulation::Refined);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      ASSERT_TRUE(lit.per_task[i].converged);
      ASSERT_TRUE(ref.per_task[i].converged);
      EXPECT_GE(lit.per_task[i].response, ref.per_task[i].response) << "c3=" << c3 << " i=" << i;
    }
  }
}

TEST(NonPreemptiveRta, NonPreemptionCostsAtLeastPreemptive) {
  // Lower-priority blocking means NP response >= preemptive response for the
  // highest-priority task.
  const TaskSet ts = classic();
  const PriorityOrder order = deadline_monotonic_order(ts);
  const FpAnalysis pre = analyze_preemptive_fp(ts, order);
  const FpAnalysis np = analyze_nonpreemptive_fp(ts, order, Formulation::Refined);
  ASSERT_TRUE(pre.per_task[0].converged);
  ASSERT_TRUE(np.per_task[0].converged);
  EXPECT_GT(np.per_task[0].response, pre.per_task[0].response);
}

TEST(NonPreemptiveRta, LowestPriorityHasNoBlocking) {
  const TaskSet ts = classic();
  const std::vector<std::size_t> hp{0, 1};
  const RtaResult r = response_time_nonpreemptive(ts, 2, hp, /*lower=*/{});
  ASSERT_TRUE(r.converged);
  // w = ⌊w/7⌋+1)·3 + (⌊w/12⌋+1)·3 from w0=6: w=6 → 3+3=6 ✓; R = 6+5 = 11.
  EXPECT_EQ(r.response, 11);
}

TEST(RtaResult, MeetsSemantics) {
  RtaResult r;
  EXPECT_FALSE(r.meets(100));
  r.converged = true;
  r.response = 10;
  EXPECT_TRUE(r.meets(10));
  EXPECT_FALSE(r.meets(9));
}

// Parameterized sweep: response times are monotone in added blocking load.
class BlockingSweep : public ::testing::TestWithParam<Ticks> {};

TEST_P(BlockingSweep, ResponseMonotoneInBlockerLength) {
  const Ticks blocker = GetParam();
  const TaskSet ts{{
      Task{.C = 1, .D = 10, .T = 10, .J = 0, .name = "victim"},
      Task{.C = blocker, .D = 50, .T = 50, .J = 0, .name = "blocker"},
  }};
  const std::vector<std::size_t> lower{1};
  const RtaResult r = response_time_nonpreemptive(ts, 0, {}, lower, Formulation::Refined);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, (blocker - 1) + 1);  // B + C
}

INSTANTIATE_TEST_SUITE_P(BlockerLengths, BlockingSweep, ::testing::Values(1, 2, 5, 9, 20, 49));

}  // namespace
}  // namespace profisched
