// Unit tests for the EDF response-time analyses (Spuri, eqs. 6–8; George,
// eqs. 9–10). The two-task example is fully hand-computed in the comments.
#include "core/response_time_edf.hpp"

#include <gtest/gtest.h>

namespace profisched {
namespace {

// τ0: C=2 D=4 T=6,  τ1: C=3 D=9 T=8.  U ≈ 0.708, L = 5.
TaskSet pair_set() {
  return TaskSet{{
      Task{.C = 2, .D = 4, .T = 6, .J = 0, .name = "t0"},
      Task{.C = 3, .D = 9, .T = 8, .J = 0, .name = "t1"},
  }};
}

TEST(EdfCandidates, EnumeratesWithinHorizon) {
  const TaskSet ts = pair_set();
  // For τ0 (D=4): own k·6 → {0}, other k·8+9−4 = k·8+5 → {5}; horizon 5.
  EXPECT_EQ(edf_candidate_offsets(ts, 0, 5), (std::vector<Ticks>{0, 5}));
  // For τ1 (D=9): own k·8 → {0}, other k·6+4−9 = 6k−5 → {1} within [0,5].
  EXPECT_EQ(edf_candidate_offsets(ts, 1, 5), (std::vector<Ticks>{0, 1}));
}

TEST(EdfCandidates, AlwaysIncludesZero) {
  const TaskSet ts{{Task{.C = 1, .D = 100, .T = 100, .J = 0, .name = ""}}};
  const std::vector<Ticks> offs = edf_candidate_offsets(ts, 0, 1);
  ASSERT_FALSE(offs.empty());
  EXPECT_EQ(offs.front(), 0);
}

TEST(EdfPreemptiveRta, HandComputedPair) {
  const TaskSet ts = pair_set();
  // τ0: a=0 → L=2, r=2; a=5 → L=5, r = max(2, 0) = 2.  R0 = 2.
  const EdfRtaResult r0 = edf_response_time_preemptive(ts, 0);
  ASSERT_TRUE(r0.converged);
  EXPECT_EQ(r0.response, 2);
  // τ1: a=0 → L=5, r=5; a=1 → L=5, r = max(3, 4) = 4.  R1 = 5.
  const EdfRtaResult r1 = edf_response_time_preemptive(ts, 1);
  ASSERT_TRUE(r1.converged);
  EXPECT_EQ(r1.response, 5);
  EXPECT_EQ(r1.critical_offset, 0);
}

TEST(EdfNonPreemptiveRta, HandComputedPair) {
  const TaskSet ts = pair_set();
  // τ0: a=0 → blocking C1−1=2, L=2, r=2+2=4; a=1 → r=3; a=5 → r=2.  R0 = 4.
  const EdfRtaResult r0 = edf_response_time_nonpreemptive(ts, 0);
  ASSERT_TRUE(r0.converged);
  EXPECT_EQ(r0.response, 4);
  EXPECT_EQ(r0.critical_offset, 0);
  // τ1: a=0 → L=2, r=3+2=5; a=1 → r=3+1=4.  R1 = 5.
  const EdfRtaResult r1 = edf_response_time_nonpreemptive(ts, 1);
  ASSERT_TRUE(r1.converged);
  EXPECT_EQ(r1.response, 5);
}

TEST(EdfPreemptiveRta, SingleTaskIsOwnC) {
  const TaskSet ts{{Task{.C = 7, .D = 20, .T = 20, .J = 0, .name = ""}}};
  const EdfRtaResult r = edf_response_time_preemptive(ts, 0);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, 7);
}

TEST(EdfNonPreemptiveRta, SingleTaskIsOwnC) {
  const TaskSet ts{{Task{.C = 7, .D = 20, .T = 20, .J = 0, .name = ""}}};
  const EdfRtaResult r = edf_response_time_nonpreemptive(ts, 0);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, 7);
}

TEST(EdfRta, OverUtilizationReportsUnschedulable) {
  const TaskSet ts{{
      Task{.C = 3, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 6, .T = 6, .J = 0, .name = ""},
  }};
  EXPECT_FALSE(edf_response_time_preemptive(ts, 0).converged);
  EXPECT_FALSE(edf_response_time_nonpreemptive(ts, 0).converged);
}

TEST(EdfRta, NonPreemptiveAtLeastPreemptiveForTightestTask) {
  // The tightest-deadline task can only lose from non-preemptability.
  const TaskSet ts = pair_set();
  const Ticks pre = edf_response_time_preemptive(ts, 0).response;
  const Ticks np = edf_response_time_nonpreemptive(ts, 0).response;
  EXPECT_GE(np, pre);
}

TEST(EdfRta, AsynchronousCaseBeatsCriticalInstantForSomeTask) {
  // Spuri's key point: the sync release (a=0) is NOT always the worst case.
  // For τ1 of the pair at a=1 we get r=4 — smaller than the a=0 value here,
  // but construct a set where some a>0 strictly dominates a=0:
  //   τ0: C=1 D=1 T=4,  τ1: C=2 D=5 T=4 (U = 0.75, L = 3).
  //   τ1 a=0: own=2, τ0 eligible (D=1<=5, cap 1+⌊4/4⌋=2): L: 0→2: W=min(⌈2/4⌉=1,2)·1=1
  //     → L=3: W=1 → 3 ✓ r = max(2, 3) = 3.
  //   τ1 a=1 (not a candidate? candidates: k·4+1−5 → k=1 → 0; own k·4 → 0;
  //   all zero…) — use τ0 period 3: candidates k·3+1−5 ≥ 0 → k=2 → 2.
  const TaskSet ts{{
      Task{.C = 1, .D = 1, .T = 3, .J = 0, .name = ""},
      Task{.C = 2, .D = 5, .T = 6, .J = 0, .name = ""},
  }};
  const EdfRtaResult r1 = edf_response_time_preemptive(ts, 1);
  ASSERT_TRUE(r1.converged);
  // Just assert the analysis explored beyond a=0 and is internally sane.
  EXPECT_GT(r1.offsets_examined, 1u);
  EXPECT_GE(r1.response, 2);
}

TEST(EdfAnalysis, WholeSetVerdicts) {
  const TaskSet ts = pair_set();
  const EdfAnalysis pre = analyze_preemptive_edf(ts);
  EXPECT_TRUE(pre.schedulable);  // R = {2, 5} vs D = {4, 9}
  const EdfAnalysis np = analyze_nonpreemptive_edf(ts);
  EXPECT_TRUE(np.schedulable);  // R = {4, 5}
}

TEST(EdfAnalysis, DetectsDeadlineMiss) {
  const TaskSet ts{{
      Task{.C = 2, .D = 2, .T = 6, .J = 0, .name = "tight"},
      Task{.C = 5, .D = 30, .T = 30, .J = 0, .name = "long"},
  }};
  // Non-preemptive: the long task blocks 4 ticks → R_tight = 6 > 2.
  const EdfAnalysis np = analyze_nonpreemptive_edf(ts);
  EXPECT_FALSE(np.schedulable);
  EXPECT_FALSE(np.per_task[0].meets(ts[0].D));
  // Preemptive: fine.
  EXPECT_TRUE(analyze_preemptive_edf(ts).schedulable);
}

TEST(EdfRta, JitterInflatesInterference) {
  TaskSet base = pair_set();
  const Ticks r_base = edf_response_time_nonpreemptive(base, 1).response;
  const TaskSet jittered{{
      Task{.C = 2, .D = 4, .T = 6, .J = 3, .name = "t0"},
      Task{.C = 3, .D = 9, .T = 8, .J = 0, .name = "t1"},
  }};
  const EdfRtaResult r = edf_response_time_nonpreemptive(jittered, 1);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.response, r_base);
}

// Parameterized: growing the interferer's C grows (never shrinks) every
// response time, for both EDF variants.
class EdfMonotoneSweep : public ::testing::TestWithParam<Ticks> {};

TEST_P(EdfMonotoneSweep, ResponseMonotoneInInterfererLoad) {
  const Ticks c1 = GetParam();
  const TaskSet smaller{{
      Task{.C = 2, .D = 6, .T = 10, .J = 0, .name = ""},
      Task{.C = c1, .D = 18, .T = 18, .J = 0, .name = ""},
  }};
  const TaskSet larger{{
      Task{.C = 2, .D = 6, .T = 10, .J = 0, .name = ""},
      Task{.C = c1 + 1, .D = 18, .T = 18, .J = 0, .name = ""},
  }};
  for (std::size_t i = 0; i < 2; ++i) {
    const EdfRtaResult a = edf_response_time_preemptive(smaller, i);
    const EdfRtaResult b = edf_response_time_preemptive(larger, i);
    ASSERT_TRUE(a.converged && b.converged);
    EXPECT_GE(b.response, a.response) << "task " << i;
    const EdfRtaResult c = edf_response_time_nonpreemptive(smaller, i);
    const EdfRtaResult d = edf_response_time_nonpreemptive(larger, i);
    ASSERT_TRUE(c.converged && d.converged);
    EXPECT_GE(d.response, c.response) << "task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(InterfererLoads, EdfMonotoneSweep, ::testing::Values(1, 3, 5, 8, 12));

}  // namespace
}  // namespace profisched
