// Property test (PR 6): the bisected breakdown scaling must bracket the
// accept→reject flip run_usweep reports on the same scenario and policy.
//
// Both layers scale C identically (C -> clamp(ceil(C·q/1024), 1, T); with
// D = T the usweep clamp [1, min(T, D)] coincides with the sensitivity
// clamp [1, T]), so a usweep grid point with scale factor q_k probes the
// EXACT task set the breakdown bisection probes at q_k. The verdict at every
// grid point must therefore equal (q_k <= q*), with q* the bisected
// breakdown boundary — across >= 100 UUniFast scenarios for each of the five
// §2 policies.
#include <cmath>

#include <gtest/gtest.h>

#include "core/sensitivity.hpp"
#include "core/usweep.hpp"
#include "sim/rng.hpp"
#include "workload/generators.hpp"

namespace profisched {
namespace {

TaskSet implicit_deadline_base(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
  workload::TaskSetParams p;
  p.n = n;
  p.total_u = 0.3;
  p.deadline_lo = 1.0;  // D = T: the two scaling clamps coincide
  p.deadline_hi = 1.0;
  return workload::random_task_set(p, rng);
}

TEST(BreakdownVsUSweep, BisectionBracketsTheCoarseGridFlip) {
  constexpr std::size_t kScenarios = 120;
  const std::vector<Policy> policies{Policy::RateMonotonic, Policy::DeadlineMonotonic,
                                     Policy::NpDeadlineMonotonic, Policy::Edf, Policy::NpEdf};

  for (std::uint64_t seed = 1; seed <= kScenarios; ++seed) {
    const TaskSet base = implicit_deadline_base(seed, 4 + seed % 6);
    const double base_u = base.utilization();

    USweepSpec spec;
    spec.policies = policies;
    for (std::size_t k = 0; k < 14; ++k) {
      spec.u_grid.push_back(base_u * (1.0 + 0.2 * static_cast<double>(k)));
    }
    const USweepResult sweep = run_usweep(base, spec);

    for (std::size_t p = 0; p < policies.size(); ++p) {
      const SchedulabilityTest test = test_for(policies[p]);
      const sensitivity::SensitivityResult bd = sensitivity::breakdown_scaling(base, test);

      for (std::size_t k = 0; k < spec.u_grid.size(); ++k) {
        // The scale factor scale_to_utilization derives for this grid point —
        // the same expression, so the probed task sets are identical.
        const Ticks q_k =
            static_cast<Ticks>(std::llround(spec.u_grid[k] / base_u * 1024.0));
        ASSERT_GE(q_k, sensitivity::kScaleOne);  // grid starts at the base load
        const bool expect_schedulable = bd.feasible && q_k <= bd.value;
        EXPECT_EQ(sweep.points[k].cells[p].schedulable, expect_schedulable)
            << "seed " << seed << " policy " << p << " grid point " << k << " (q=" << q_k
            << ", breakdown q*="
            << (bd.feasible ? std::to_string(bd.value) : std::string("infeasible")) << ")";
      }

      // And the breakdown utilization itself must land inside the coarse
      // grid's flip interval: at least the last accepted point's actual
      // utilization, below the first rejected point's.
      if (bd.feasible && !bd.cap_hit) {
        const double breakdown_u = sensitivity::utilization_at_scale(base, bd.value);
        for (std::size_t k = 0; k < spec.u_grid.size(); ++k) {
          const Ticks q_k =
              static_cast<Ticks>(std::llround(spec.u_grid[k] / base_u * 1024.0));
          if (q_k <= bd.value) {
            EXPECT_GE(breakdown_u + 1e-12, sweep.points[k].u_actual)
                << "seed " << seed << " policy " << p;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace profisched
