// Unit tests for the exact integer time arithmetic every analysis rests on.
#include "core/time_types.hpp"

#include <gtest/gtest.h>

namespace profisched {
namespace {

TEST(FloorDiv, ExactQuotients) {
  EXPECT_EQ(floor_div(10, 5), 2);
  EXPECT_EQ(floor_div(0, 7), 0);
  EXPECT_EQ(floor_div(-10, 5), -2);
}

TEST(FloorDiv, RoundsTowardNegativeInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-1, 10), -1);
  EXPECT_EQ(floor_div(1, 10), 0);
}

TEST(CeilDiv, ExactQuotients) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(-10, 5), -2);
}

TEST(CeilDiv, RoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(1, 10), 1);
  EXPECT_EQ(ceil_div(-1, 10), 0);
}

TEST(CeilDivPlus, ClampsNegativeToZero) {
  EXPECT_EQ(ceil_div_plus(-1, 5), 0);
  EXPECT_EQ(ceil_div_plus(-100, 5), 0);
  EXPECT_EQ(ceil_div_plus(0, 5), 0);
  EXPECT_EQ(ceil_div_plus(1, 5), 1);
  EXPECT_EQ(ceil_div_plus(5, 5), 1);
  EXPECT_EQ(ceil_div_plus(6, 5), 2);
}

TEST(FloorDivPlus1, CountsJobsReleasedInClosedInterval) {
  // Jobs of a task with offset d, period b released in [0, a]: the demand-
  // bound building block.
  EXPECT_EQ(floor_div_plus1(-1, 5), 0);
  EXPECT_EQ(floor_div_plus1(0, 5), 1);
  EXPECT_EQ(floor_div_plus1(4, 5), 1);
  EXPECT_EQ(floor_div_plus1(5, 5), 2);
  EXPECT_EQ(floor_div_plus1(14, 5), 3);
}

TEST(FloorDivPlus1, DiffersFromCeilDivPlusAtExactMultiples) {
  // The paper-literal demand form ⌈x/T⌉⁺ vs the standard (⌊x/T⌋+1)⁺: they
  // disagree exactly at multiples of T (including 0), where the literal form
  // misses one job.
  for (Ticks x = 0; x <= 40; x += 10) {
    EXPECT_EQ(floor_div_plus1(x, 10), ceil_div_plus(x, 10) + 1) << "x=" << x;
  }
  for (Ticks x : {1, 9, 11, 19, 25}) {
    EXPECT_EQ(floor_div_plus1(x, 10), ceil_div_plus(x, 10)) << "x=" << x;
  }
}

TEST(SatAdd, NormalAndSaturatingBehaviour) {
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_EQ(sat_add(-2, 3), 1);
  EXPECT_EQ(sat_add(kNoBound, 1), kNoBound);
  EXPECT_EQ(sat_add(1, kNoBound), kNoBound);
  EXPECT_EQ(sat_add(kNoBound - 1, 10), kNoBound);
}

TEST(SatMul, NormalAndSaturatingBehaviour) {
  EXPECT_EQ(sat_mul(3, 4), 12);
  EXPECT_EQ(sat_mul(0, kNoBound), 0);
  EXPECT_EQ(sat_mul(kNoBound, 2), kNoBound);
  EXPECT_EQ(sat_mul(Ticks{1} << 40, Ticks{1} << 40), kNoBound);
}

TEST(GcdLcm, BasicIdentities) {
  EXPECT_EQ(gcd_ticks(12, 18), 6);
  EXPECT_EQ(gcd_ticks(7, 13), 1);
  EXPECT_EQ(gcd_ticks(0, 5), 5);
  EXPECT_EQ(lcm_ticks(4, 6), 12);
  EXPECT_EQ(lcm_ticks(7, 13), 91);
  EXPECT_EQ(lcm_ticks(0, 5), 0);
}

TEST(GcdLcm, LcmSaturatesOnOverflow) {
  const Ticks big_prime1 = 2'147'483'647;  // 2^31 − 1
  const Ticks big_prime2 = 2'147'483'629;
  EXPECT_EQ(lcm_ticks(sat_mul(big_prime1, big_prime2), big_prime1 + 2), kNoBound);
}

// Property sweep: floor/ceil agree with the mathematical definition across a
// grid including negatives.
class DivisionGrid : public ::testing::TestWithParam<Ticks> {};

TEST_P(DivisionGrid, FloorCeilConsistency) {
  const Ticks b = GetParam();
  for (Ticks a = -3 * b - 1; a <= 3 * b + 1; ++a) {
    const Ticks f = floor_div(a, b);
    const Ticks c = ceil_div(a, b);
    EXPECT_LE(f * b, a);
    EXPECT_GT((f + 1) * b, a);
    EXPECT_GE(c * b, a);
    EXPECT_LT((c - 1) * b, a);
    EXPECT_TRUE(c == f || c == f + 1);
    EXPECT_EQ(c == f, a % b == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, DivisionGrid, ::testing::Values(1, 2, 3, 5, 7, 16, 97));

}  // namespace
}  // namespace profisched
