// Unit tests for the Task / TaskSet model.
#include "core/task.hpp"

#include <gtest/gtest.h>

namespace profisched {
namespace {

TaskSet three_tasks() {
  return TaskSet{{
      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = "a"},
      Task{.C = 3, .D = 12, .T = 12, .J = 0, .name = "b"},
      Task{.C = 5, .D = 20, .T = 20, .J = 0, .name = "c"},
  }};
}

TEST(TaskSet, SizeAndAccess) {
  const TaskSet ts = three_tasks();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].name, "a");
  EXPECT_EQ(ts[2].C, 5);
  EXPECT_FALSE(ts.empty());
  EXPECT_TRUE(TaskSet{}.empty());
}

TEST(TaskSet, Utilization) {
  const TaskSet ts = three_tasks();
  EXPECT_NEAR(ts.utilization(), 3.0 / 7 + 3.0 / 12 + 5.0 / 20, 1e-12);
  EXPECT_NEAR(ts[0].utilization(), 3.0 / 7, 1e-12);
}

TEST(TaskSet, Aggregates) {
  const TaskSet ts = three_tasks();
  EXPECT_EQ(ts.total_execution(), 11);
  EXPECT_EQ(ts.max_execution(), 5);
  EXPECT_EQ(ts.min_deadline(), 7);
  EXPECT_EQ(ts.max_deadline(), 20);
}

TEST(TaskSet, EmptySetAggregates) {
  const TaskSet ts;
  EXPECT_EQ(ts.total_execution(), 0);
  EXPECT_EQ(ts.max_execution(), 0);
  EXPECT_EQ(ts.min_deadline(), kNoBound);
  EXPECT_EQ(ts.max_deadline(), 0);
  EXPECT_EQ(ts.hyperperiod(), 1);
}

TEST(TaskSet, Hyperperiod) {
  EXPECT_EQ(three_tasks().hyperperiod(), 420);  // lcm(7, 12, 20)
}

TEST(TaskSet, HyperperiodSaturates) {
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) {
    const Ticks prime = std::vector<Ticks>{10007, 10009, 10037, 10039, 10061, 10067,
                                           10069, 10079, 10091, 10093, 10099, 10103}[
        static_cast<std::size_t>(i)];
    tasks.push_back(Task{.C = 1, .D = prime, .T = prime, .J = 0, .name = ""});
  }
  EXPECT_EQ(TaskSet{tasks}.hyperperiod(), kNoBound);
}

TEST(TaskSet, DeadlineModelPredicates) {
  EXPECT_TRUE(three_tasks().implicit_deadlines());
  EXPECT_TRUE(three_tasks().constrained_deadlines());

  const TaskSet constrained{{Task{.C = 1, .D = 5, .T = 10, .J = 0, .name = ""}}};
  EXPECT_FALSE(constrained.implicit_deadlines());
  EXPECT_TRUE(constrained.constrained_deadlines());

  const TaskSet arbitrary{{Task{.C = 1, .D = 15, .T = 10, .J = 0, .name = ""}}};
  EXPECT_FALSE(arbitrary.implicit_deadlines());
  EXPECT_FALSE(arbitrary.constrained_deadlines());
}

TEST(TaskSetValidation, RejectsNonPositiveC) {
  EXPECT_THROW((TaskSet{{Task{.C = 0, .D = 5, .T = 5, .J = 0, .name = ""}}}),
               std::invalid_argument);
}

TEST(TaskSetValidation, RejectsNonPositiveD) {
  EXPECT_THROW((TaskSet{{Task{.C = 1, .D = 0, .T = 5, .J = 0, .name = ""}}}),
               std::invalid_argument);
}

TEST(TaskSetValidation, RejectsNonPositiveT) {
  EXPECT_THROW((TaskSet{{Task{.C = 1, .D = 5, .T = 0, .J = 0, .name = ""}}}),
               std::invalid_argument);
}

TEST(TaskSetValidation, RejectsCGreaterThanT) {
  EXPECT_THROW((TaskSet{{Task{.C = 6, .D = 9, .T = 5, .J = 0, .name = ""}}}),
               std::invalid_argument);
}

TEST(TaskSetValidation, RejectsNegativeJitter) {
  EXPECT_THROW((TaskSet{{Task{.C = 1, .D = 5, .T = 5, .J = -1, .name = ""}}}),
               std::invalid_argument);
}

TEST(TaskSetValidation, PushBackValidatesNewcomer) {
  TaskSet ts;
  ts.push_back(Task{.C = 1, .D = 2, .T = 3, .J = 0, .name = "ok"});
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_THROW(ts.push_back(Task{.C = 9, .D = 2, .T = 3, .J = 0, .name = "bad"}),
               std::invalid_argument);
  EXPECT_EQ(ts.size(), 1u);  // failed push must not modify the set
}

TEST(TaskSetValidation, ErrorMessageNamesTheTask) {
  try {
    TaskSet{{Task{.C = 0, .D = 5, .T = 5, .J = 0, .name = "sensor-poll"}}};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sensor-poll"), std::string::npos);
  }
}

TEST(TaskSet, RangeForIteration) {
  Ticks sum = 0;
  for (const Task& t : three_tasks()) sum += t.C;
  EXPECT_EQ(sum, 11);
}

}  // namespace
}  // namespace profisched
