// Unit tests for RM/DM priority assignment and Audsley's OPA.
#include "core/priority_assignment.hpp"

#include <gtest/gtest.h>

#include "core/response_time_fp.hpp"

namespace profisched {
namespace {

TEST(RateMonotonic, ShorterPeriodFirst) {
  const TaskSet ts{{
      Task{.C = 1, .D = 30, .T = 30, .J = 0, .name = ""},
      Task{.C = 1, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 1, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
  EXPECT_EQ(rate_monotonic_order(ts), (PriorityOrder{1, 2, 0}));
}

TEST(RateMonotonic, TiesBreakByIndexStably) {
  const TaskSet ts{{
      Task{.C = 1, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 2, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 3, .D = 5, .T = 5, .J = 0, .name = ""},
  }};
  EXPECT_EQ(rate_monotonic_order(ts), (PriorityOrder{2, 0, 1}));
}

TEST(DeadlineMonotonic, ShorterDeadlineFirst) {
  const TaskSet ts{{
      Task{.C = 1, .D = 9, .T = 30, .J = 0, .name = ""},
      Task{.C = 1, .D = 25, .T = 10, .J = 0, .name = ""},
      Task{.C = 1, .D = 14, .T = 20, .J = 0, .name = ""},
  }};
  // DM and RM genuinely differ here: DM by D = {0, 2, 1}, RM by T = {1, 2, 0}.
  EXPECT_EQ(deadline_monotonic_order(ts), (PriorityOrder{0, 2, 1}));
  EXPECT_NE(deadline_monotonic_order(ts), rate_monotonic_order(ts));
}

TEST(PriorityRanks, InvertsTheOrder) {
  const PriorityOrder order{2, 0, 1};
  const std::vector<std::size_t> rank = priority_ranks(order);
  EXPECT_EQ(rank[2], 0u);
  EXPECT_EQ(rank[0], 1u);
  EXPECT_EQ(rank[1], 2u);
}

TEST(Audsley, FindsAnOrderWhenDmSuffices) {
  const TaskSet ts{{
      Task{.C = 1, .D = 4, .T = 4, .J = 0, .name = ""},
      Task{.C = 1, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  const auto order = audsley_optimal_order(ts, np_lowest_level_feasible);
  ASSERT_TRUE(order.has_value());
  // The found order must itself be schedulable end to end.
  EXPECT_TRUE(analyze_nonpreemptive_fp(ts, *order).schedulable);
}

TEST(Audsley, ReturnsNulloptWhenNoOrderExists) {
  // Two tasks each needing the processor immediately and exclusively: no
  // priority order can make the lowest-priority one meet its deadline under
  // non-preemptive blocking.
  const TaskSet ts{{
      Task{.C = 5, .D = 5, .T = 10, .J = 0, .name = ""},
      Task{.C = 5, .D = 5, .T = 10, .J = 0, .name = ""},
  }};
  EXPECT_FALSE(audsley_optimal_order(ts, np_lowest_level_feasible).has_value());
}

TEST(Audsley, HandlesSingleTask) {
  const TaskSet ts{{Task{.C = 2, .D = 5, .T = 5, .J = 0, .name = ""}}};
  const auto order = audsley_optimal_order(ts, np_lowest_level_feasible);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (PriorityOrder{0}));
}

TEST(Audsley, AgreesWithDmOnSchedulability) {
  // For non-preemptive FP with constrained deadlines, DM is not optimal in
  // general, but whenever DM schedules a set OPA must find *some* order too.
  const TaskSet ts{{
      Task{.C = 2, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 3, .D = 15, .T = 15, .J = 0, .name = ""},
      Task{.C = 4, .D = 40, .T = 40, .J = 0, .name = ""},
  }};
  ASSERT_TRUE(analyze_nonpreemptive_fp(ts, deadline_monotonic_order(ts)).schedulable);
  EXPECT_TRUE(audsley_optimal_order(ts, np_lowest_level_feasible).has_value());
}

TEST(Audsley, BeatsDmOnAKnownCounterexample) {
  // Non-preemptive FP: DM can fail where another fixed order succeeds,
  // because a long lax task blocks the tight one regardless of order — the
  // tight task then prefers *fewer* same-rank interferers above it.
  //   t0: C=2 D=3  T=12,  t1: C=2 D=4 T=12,  t2: C=4 D=12 T=12
  // DM: t0 > t1 > t2.  R(t1) = B(4..3) … check both orders via the analysis
  // and only assert consistency: if DM fails but OPA succeeds, OPA's order
  // must verify schedulable.
  const TaskSet ts{{
      Task{.C = 2, .D = 3, .T = 12, .J = 0, .name = ""},
      Task{.C = 2, .D = 4, .T = 12, .J = 0, .name = ""},
      Task{.C = 4, .D = 12, .T = 12, .J = 0, .name = ""},
  }};
  const auto opa = audsley_optimal_order(ts, np_lowest_level_feasible);
  const bool dm_ok = analyze_nonpreemptive_fp(ts, deadline_monotonic_order(ts)).schedulable;
  if (opa.has_value()) {
    EXPECT_TRUE(analyze_nonpreemptive_fp(ts, *opa).schedulable);
  } else {
    EXPECT_FALSE(dm_ok);  // OPA failing implies no fixed order works, DM included
  }
}

}  // namespace
}  // namespace profisched
