// Unit tests for the utilization-based tests of §2 (Liu–Layland, hyperbolic,
// EDF Σ C/T).
#include "core/utilization.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace profisched {
namespace {

TEST(LiuLaylandBound, KnownValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 2 * (std::sqrt(2.0) - 1), 1e-12);  // ≈ 0.8284
  EXPECT_NEAR(liu_layland_bound(3), 3 * (std::pow(2.0, 1.0 / 3) - 1), 1e-12);
}

TEST(LiuLaylandBound, DecreasesTowardLn2) {
  double prev = liu_layland_bound(1);
  for (std::size_t n = 2; n <= 64; ++n) {
    const double b = liu_layland_bound(n);
    EXPECT_LT(b, prev) << "n=" << n;
    EXPECT_GT(b, std::log(2.0)) << "n=" << n;
    prev = b;
  }
  EXPECT_NEAR(liu_layland_bound(100000), std::log(2.0), 1e-4);
}

TEST(LiuLaylandTest, AcceptsLowUtilization) {
  const TaskSet ts{{
      Task{.C = 1, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 2, .D = 20, .T = 20, .J = 0, .name = ""},
  }};  // U = 0.2
  EXPECT_TRUE(liu_layland_test(ts));
}

TEST(LiuLaylandTest, RejectsAboveBound) {
  const TaskSet ts{{
      Task{.C = 5, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 8, .D = 20, .T = 20, .J = 0, .name = ""},
  }};  // U = 0.9 > 0.8284
  EXPECT_FALSE(liu_layland_test(ts));
}

TEST(LiuLaylandTest, RequiresImplicitDeadlines) {
  const TaskSet ts{{Task{.C = 1, .D = 5, .T = 10, .J = 0, .name = ""}}};
  EXPECT_THROW((void)liu_layland_test(ts), std::invalid_argument);
}

TEST(HyperbolicBound, DominatesLiuLayland) {
  // The classic case LL rejects but the hyperbolic bound accepts:
  // two tasks with U_i = 0.41 each → U = 0.82 < LL 0.8284? No — pick U
  // between the bounds: U1 = U2 = 0.414214… is the LL boundary. Use
  // (u+1)² <= 2 boundary: u = √2 − 1 each. Just below it both pass; between
  // Σu > LL and Π(u+1) <= 2 exists for asymmetric splits.
  const TaskSet ts{{
      Task{.C = 70, .D = 100, .T = 100, .J = 0, .name = ""},
      Task{.C = 17, .D = 100, .T = 100, .J = 0, .name = ""},
  }};  // U = 0.87 > LL(2) = 0.8284; Π(U_i+1) = 1.7·1.17 = 1.989 <= 2
  EXPECT_FALSE(liu_layland_test(ts));
  EXPECT_TRUE(hyperbolic_bound_test(ts));
}

TEST(HyperbolicBound, RejectsOverTwoProduct) {
  const TaskSet ts{{
      Task{.C = 60, .D = 100, .T = 100, .J = 0, .name = ""},
      Task{.C = 40, .D = 100, .T = 100, .J = 0, .name = ""},
  }};  // Π = 1.6·1.4 = 2.24 > 2
  EXPECT_FALSE(hyperbolic_bound_test(ts));
}

TEST(EdfUtilizationTest, BoundaryExactlyOne) {
  const TaskSet full{{
      Task{.C = 5, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 10, .D = 20, .T = 20, .J = 0, .name = ""},
  }};  // U = 1.0 exactly — schedulable under preemptive EDF with D = T
  EXPECT_TRUE(edf_utilization_test(full));

  const TaskSet over{{
      Task{.C = 6, .D = 10, .T = 10, .J = 0, .name = ""},
      Task{.C = 10, .D = 20, .T = 20, .J = 0, .name = ""},
  }};  // U = 1.1
  EXPECT_FALSE(edf_utilization_test(over));
}

// Property: whenever Liu–Layland accepts, the hyperbolic bound accepts too
// (strict dominance), across a grid of two-task splits.
class BoundDominance : public ::testing::TestWithParam<int> {};

TEST_P(BoundDominance, HyperbolicAcceptsWheneverLlDoes) {
  const int c1 = GetParam();
  for (int c2 = 1; c2 <= 99 - c1; ++c2) {
    const TaskSet ts{{
        Task{.C = c1, .D = 100, .T = 100, .J = 0, .name = ""},
        Task{.C = c2, .D = 100, .T = 100, .J = 0, .name = ""},
    }};
    if (liu_layland_test(ts)) {
      EXPECT_TRUE(hyperbolic_bound_test(ts)) << "c1=" << c1 << " c2=" << c2;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoTaskGrid, BoundDominance,
                         ::testing::Values(1, 10, 20, 30, 40, 50, 60, 70));

}  // namespace
}  // namespace profisched
