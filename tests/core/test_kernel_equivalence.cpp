// Kernel-equivalence suite: the SoA fast paths (taskset_view + scratch
// overloads, the routes analyze_* take since the PR-4 overhaul) must produce
// results identical to the retained TaskSet/index-span reference
// implementations — response, convergence flag AND iteration count where the
// result defines one — over randomized UUniFast task sets spanning
// convergent, divergent and degenerate regimes.
#include <vector>

#include <gtest/gtest.h>

#include "core/busy_period.hpp"
#include "core/edf_feasibility.hpp"
#include "core/priority_assignment.hpp"
#include "core/response_time_edf.hpp"
#include "core/response_time_fp.hpp"
#include "sim/rng.hpp"
#include "workload/generators.hpp"

namespace profisched {
namespace {

constexpr std::size_t kSetsPerPolicy = 220;

/// Randomized set: n in [2, 16], U in [0.3, 1.15] (past 1 exercises the
/// divergence paths), deadlines down to 0.6·T, occasional jitter.
TaskSet random_set(std::uint64_t seed) {
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  workload::TaskSetParams p;
  p.n = 2 + static_cast<std::size_t>(rng.uniform(0, 14));
  p.total_u = 0.3 + 0.85 * rng.uniform01();
  p.deadline_lo = 0.6 + 0.2 * rng.uniform01();
  p.deadline_hi = 1.0 + 0.2 * rng.uniform01();
  p.jitter_max = (seed % 3 == 0) ? 200 : 0;
  return workload::random_task_set(p, rng);
}

/// The seed-era whole-set FP analysis, built from the retained per-task
/// reference entry points (exactly what analyze_* did before the SoA path).
FpAnalysis reference_fp(const TaskSet& ts, const PriorityOrder& order, bool preemptive,
                        Formulation form, int fuel = 1 << 16) {
  FpAnalysis out;
  out.per_task.resize(ts.size());
  out.schedulable = true;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    const std::vector<std::size_t> higher(order.begin(),
                                          order.begin() + static_cast<std::ptrdiff_t>(pos));
    const std::vector<std::size_t> lower(order.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                                         order.end());
    out.per_task[i] = preemptive
                          ? response_time_preemptive(ts, i, higher, fuel)
                          : response_time_nonpreemptive(ts, i, higher, lower, form, fuel);
    if (!out.per_task[i].meets(ts[i].D)) out.schedulable = false;
  }
  return out;
}

void expect_same(const RtaResult& ref, const RtaResult& fast, std::uint64_t seed,
                 std::size_t task) {
  EXPECT_EQ(ref.converged, fast.converged) << "seed " << seed << " task " << task;
  EXPECT_EQ(ref.response, fast.response) << "seed " << seed << " task " << task;
  EXPECT_EQ(ref.iterations, fast.iterations) << "seed " << seed << " task " << task;
}

TEST(KernelEquivalence, PreemptiveFpMatchesReference) {
  RtaScratch scratch;
  for (std::uint64_t seed = 1; seed <= kSetsPerPolicy; ++seed) {
    const TaskSet ts = random_set(seed);
    const PriorityOrder order = rate_monotonic_order(ts);
    const FpAnalysis ref = reference_fp(ts, order, /*preemptive=*/true, kDefaultFormulation);
    const FpAnalysis plain = analyze_preemptive_fp(ts, order);
    const FpAnalysis reused = analyze_preemptive_fp(ts, order, 1 << 16, scratch);
    ASSERT_EQ(ref.per_task.size(), plain.per_task.size());
    EXPECT_EQ(ref.schedulable, plain.schedulable) << "seed " << seed;
    EXPECT_EQ(ref.schedulable, reused.schedulable) << "seed " << seed;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      expect_same(ref.per_task[i], plain.per_task[i], seed, i);
      expect_same(ref.per_task[i], reused.per_task[i], seed, i);
    }
  }
}

TEST(KernelEquivalence, NonpreemptiveFpMatchesReferenceBothFormulations) {
  RtaScratch scratch;
  for (const Formulation form : {Formulation::PaperLiteral, Formulation::Refined}) {
    for (std::uint64_t seed = 1; seed <= kSetsPerPolicy; ++seed) {
      const TaskSet ts = random_set(seed);
      const PriorityOrder order = deadline_monotonic_order(ts);
      const FpAnalysis ref = reference_fp(ts, order, /*preemptive=*/false, form);
      const FpAnalysis plain = analyze_nonpreemptive_fp(ts, order, form);
      const FpAnalysis reused = analyze_nonpreemptive_fp(ts, order, form, 1 << 16, scratch);
      EXPECT_EQ(ref.schedulable, plain.schedulable) << "seed " << seed;
      EXPECT_EQ(ref.schedulable, reused.schedulable) << "seed " << seed;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        expect_same(ref.per_task[i], plain.per_task[i], seed, i);
        expect_same(ref.per_task[i], reused.per_task[i], seed, i);
      }
    }
  }
}

TEST(KernelEquivalence, PerTaskViewEntryPointsMatchReference) {
  // The rank-indexed view functions themselves (not just the analyze loop).
  RtaScratch scratch;
  for (std::uint64_t seed = 1; seed <= kSetsPerPolicy; ++seed) {
    const TaskSet ts = random_set(seed);
    const PriorityOrder order = deadline_monotonic_order(ts);
    const TaskSetView& pv = scratch.arena.bind(ts, order);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::size_t i = order[pos];
      const std::vector<std::size_t> higher(order.begin(),
                                            order.begin() + static_cast<std::ptrdiff_t>(pos));
      const std::vector<std::size_t> lower(order.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                                           order.end());
      expect_same(response_time_preemptive(ts, i, higher),
                  response_time_preemptive(pv, pos), seed, i);
      expect_same(response_time_nonpreemptive(ts, i, higher, lower),
                  response_time_nonpreemptive(pv, pos), seed, i);
      EXPECT_EQ(blocking_factor(ts, lower), blocking_factor(pv, pos + 1));
    }
  }
}

TEST(KernelEquivalence, BusyPeriodMatchesReference) {
  TaskSetArena arena;
  for (std::uint64_t seed = 1; seed <= kSetsPerPolicy; ++seed) {
    const TaskSet ts = random_set(seed);
    const BusyPeriod ref = synchronous_busy_period(ts);
    const BusyPeriod fast = synchronous_busy_period(arena.bind(ts));
    EXPECT_EQ(ref.length, fast.length) << "seed " << seed;
    EXPECT_EQ(ref.iterations, fast.iterations) << "seed " << seed;
  }
}

TEST(KernelEquivalence, EdfFeasibilityMatchesReference) {
  RtaScratch scratch;
  for (const Formulation form : {Formulation::PaperLiteral, Formulation::Refined}) {
    for (std::uint64_t seed = 1; seed <= kSetsPerPolicy; ++seed) {
      const TaskSet ts = random_set(seed);
      const auto check = [&](const FeasibilityResult& ref, const FeasibilityResult& fast) {
        EXPECT_EQ(ref.feasible, fast.feasible) << "seed " << seed;
        EXPECT_EQ(ref.first_violation, fast.first_violation) << "seed " << seed;
        EXPECT_EQ(ref.horizon, fast.horizon) << "seed " << seed;
        EXPECT_EQ(ref.checkpoints, fast.checkpoints) << "seed " << seed;
      };
      check(edf_preemptive_feasible(ts, form), edf_preemptive_feasible(ts, form, scratch));
      check(np_edf_feasible_zheng_shin(ts, form),
            np_edf_feasible_zheng_shin(ts, form, scratch));
      check(np_edf_feasible_george(ts, form), np_edf_feasible_george(ts, form, scratch));
    }
  }
}

TEST(KernelEquivalence, EdfRtaMatchesReference) {
  RtaScratch scratch;
  const EdfRtaOptions opt;
  for (std::uint64_t seed = 1; seed <= kSetsPerPolicy; ++seed) {
    const TaskSet ts = random_set(seed);
    for (const bool preemptive : {true, false}) {
      EdfAnalysis ref;
      ref.per_task.resize(ts.size());
      ref.schedulable = true;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        ref.per_task[i] = preemptive ? edf_response_time_preemptive(ts, i, opt)
                                     : edf_response_time_nonpreemptive(ts, i, opt);
        if (!ref.per_task[i].meets(ts[i].D)) ref.schedulable = false;
      }
      const EdfAnalysis plain =
          preemptive ? analyze_preemptive_edf(ts, opt) : analyze_nonpreemptive_edf(ts, opt);
      const EdfAnalysis reused = preemptive
                                     ? analyze_preemptive_edf(ts, opt, scratch)
                                     : analyze_nonpreemptive_edf(ts, opt, scratch);
      EXPECT_EQ(ref.schedulable, plain.schedulable) << "seed " << seed;
      EXPECT_EQ(ref.schedulable, reused.schedulable) << "seed " << seed;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        for (const EdfAnalysis* fast : {&plain, &reused}) {
          EXPECT_EQ(ref.per_task[i].converged, fast->per_task[i].converged)
              << "seed " << seed << " task " << i << " preemptive " << preemptive;
          EXPECT_EQ(ref.per_task[i].response, fast->per_task[i].response)
              << "seed " << seed << " task " << i << " preemptive " << preemptive;
          EXPECT_EQ(ref.per_task[i].critical_offset, fast->per_task[i].critical_offset)
              << "seed " << seed << " task " << i << " preemptive " << preemptive;
          EXPECT_EQ(ref.per_task[i].offsets_examined, fast->per_task[i].offsets_examined)
              << "seed " << seed << " task " << i << " preemptive " << preemptive;
        }
      }
    }
  }
}

}  // namespace
}  // namespace profisched
