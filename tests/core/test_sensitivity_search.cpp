// Unit tests for the unified exact-binary-search core (PR 6): boundary
// exactness, infeasible/cap conventions, probe counts, bracket validation,
// and the task-set sensitivity searches agreeing through the unified
// SensitivityResult surface.
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/sensitivity.hpp"
#include "core/sensitivity_search.hpp"

namespace profisched::sensitivity {
namespace {

TEST(SensitivitySearch, MaxSatisfyingFindsExactBoundary) {
  for (Ticks boundary = 1; boundary <= 2'000; boundary += 97) {
    const SensitivityResult r =
        max_satisfying(1, 2'000, [&](Ticks v) { return v <= boundary; });
    ASSERT_TRUE(r.feasible) << "boundary " << boundary;
    EXPECT_EQ(r.value, boundary);
    EXPECT_EQ(r.cap_hit, boundary >= 2'000);
  }
}

TEST(SensitivitySearch, MinSatisfyingFindsExactBoundary) {
  for (Ticks boundary = 1; boundary <= 2'000; boundary += 97) {
    const SensitivityResult r =
        min_satisfying(1, 2'000, [&](Ticks v) { return v >= boundary; });
    ASSERT_TRUE(r.feasible) << "boundary " << boundary;
    EXPECT_EQ(r.value, boundary);
    EXPECT_EQ(r.cap_hit, boundary <= 1);  // floor already satisfies
  }
}

TEST(SensitivitySearch, InfeasibleWhenNothingSatisfies) {
  const SensitivityResult max = max_satisfying(10, 100, [](Ticks) { return false; });
  EXPECT_FALSE(max.feasible);
  EXPECT_FALSE(static_cast<bool>(max));
  EXPECT_EQ(max.probes, 1u);  // the floor probe alone decides

  const SensitivityResult min = min_satisfying(10, 100, [](Ticks) { return false; });
  EXPECT_FALSE(min.feasible);
}

TEST(SensitivitySearch, CapHitShortCircuitsTheBisection) {
  const SensitivityResult r = max_satisfying(1, 1 << 20, [](Ticks) { return true; });
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.cap_hit);
  EXPECT_EQ(r.value, 1 << 20);
  EXPECT_EQ(r.probes, 2u);  // floor + ceiling, no interior probes
}

TEST(SensitivitySearch, SingletonBracket) {
  const SensitivityResult yes = max_satisfying(42, 42, [](Ticks) { return true; });
  ASSERT_TRUE(yes.feasible);
  EXPECT_EQ(yes.value, 42);
  EXPECT_TRUE(yes.cap_hit);

  const SensitivityResult no = min_satisfying(42, 42, [](Ticks) { return false; });
  EXPECT_FALSE(no.feasible);
}

TEST(SensitivitySearch, ProbeCountIsLogarithmic) {
  const SensitivityResult r =
      max_satisfying(1, 1 << 24, [](Ticks v) { return v <= 5'000'000; });
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.value, 5'000'000);
  EXPECT_LE(r.probes, 27u);  // floor + ceiling + ~log2(2^24) interior probes
}

TEST(SensitivitySearch, RejectsEmptyBracket) {
  EXPECT_THROW((void)max_satisfying(10, 9, [](Ticks) { return true; }),
               std::invalid_argument);
  EXPECT_THROW((void)min_satisfying(10, 9, [](Ticks) { return true; }),
               std::invalid_argument);
}

// The unified SensitivityResult API is the only sensitivity surface: the
// searches agree with each other on a schedulable set, and the breakdown
// utilization falls out of breakdown_scaling + utilization_at_scale.
TEST(SensitivitySearch, UnifiedApiCoversTheSensitivitySearches) {
  std::vector<Task> tasks;
  tasks.push_back(Task{.C = 10, .D = 100, .T = 100});
  tasks.push_back(Task{.C = 20, .D = 200, .T = 200});
  tasks.push_back(Task{.C = 40, .D = 400, .T = 400});
  const TaskSet ts{std::move(tasks)};
  const SchedulabilityTest test = test_for(Policy::DeadlineMonotonic);

  const SensitivityResult bd = sensitivity::breakdown_scaling(ts, test);
  ASSERT_TRUE(bd.feasible);
  EXPECT_GE(bd.value, kScaleOne);  // schedulable set: at least 1.0x headroom

  // Scaling every task is at least as constraining as scaling one.
  const SensitivityResult head = sensitivity::execution_scaling_headroom(ts, 0, test);
  ASSERT_TRUE(head.feasible);
  EXPECT_GE(head.value, bd.value);

  const SensitivityResult dmin = sensitivity::minimum_sustainable_deadline(ts, 1, test);
  ASSERT_TRUE(dmin.feasible);
  EXPECT_LE(dmin.value, ts[1].D);
  EXPECT_GE(dmin.value, ts[1].C);

  const double bu = utilization_at_scale(ts, bd.value);
  EXPECT_GE(bu, ts.utilization());
  EXPECT_LE(bu, 1.0);
}

}  // namespace
}  // namespace profisched::sensitivity
