// Golden lock (PR 6): the optimize tables for a small fixed spec are frozen
// byte-for-byte on disk. Any change to the bisection order, quantile math,
// serialization, or scenario generation shows up as a diff here
// (regenerate deliberately with PROFISCHED_REGEN_GOLDEN=1).
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "opt/opt_aggregate.hpp"
#include "opt/optimizer.hpp"

namespace profisched::opt {
namespace {

constexpr const char* kCsvGolden = "tests/golden/optimize_pr6.csv";
constexpr const char* kJsonGolden = "tests/golden/optimize_pr6.json";

OptimizeSpec golden_spec() {
  OptimizeSpec spec;
  spec.sweep.base.n_masters = 2;
  spec.sweep.base.streams_per_master = 3;
  spec.sweep.base.ttr = 3'000;
  spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  spec.sweep.scenarios_per_point = 6;
  spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  spec.sweep.seed = 99;
  return spec;
}

void check_golden(const char* path, const std::string& got) {
  if (std::getenv("PROFISCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << path
                         << " (run with PROFISCHED_REGEN_GOLDEN=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  // Byte-identical: the optimize output is part of the artifact contract —
  // shard merges and cache hits are compared against these exact bytes.
  ASSERT_EQ(got, want.str());
}

TEST(OptimizeGolden, CsvMatches) {
  const OptimizeSpec spec = golden_spec();
  engine::SweepRunner runner(2);
  check_golden(kCsvGolden, aggregate_optimize(spec, run_optimize(runner, spec)).to_csv());
}

TEST(OptimizeGolden, JsonMatches) {
  const OptimizeSpec spec = golden_spec();
  engine::SweepRunner runner(2);
  check_golden(kJsonGolden, aggregate_optimize(spec, run_optimize(runner, spec)).to_json());
}

}  // namespace
}  // namespace profisched::opt
