// `profisched optimize` argument validation (PR 6): defaults, bracket-flag
// fixed-point conversion, policy restriction to the optimizable four, and
// loud one-line diagnostics on every malformed flag.
#include "opt/opt_cli.hpp"

#include <gtest/gtest.h>

namespace profisched::opt {
namespace {

OptimizeCli parse_ok(const std::vector<std::string>& args) {
  OptimizeCli cli;
  std::string error;
  EXPECT_TRUE(parse_optimize_args(args, cli, error)) << error;
  EXPECT_TRUE(error.empty());
  return cli;
}

std::string parse_fail(const std::vector<std::string>& args) {
  OptimizeCli cli;
  std::string error;
  EXPECT_FALSE(parse_optimize_args(args, cli, error));
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(OptCli, DefaultsMatchTheSweepSubcommands) {
  const OptimizeCli cli = parse_ok({});
  EXPECT_EQ(cli.spec.sweep.base.n_masters, 1u);
  EXPECT_EQ(cli.spec.sweep.base.streams_per_master, 5u);
  EXPECT_EQ(cli.spec.sweep.base.ttr, 3'000);
  EXPECT_EQ(cli.spec.sweep.scenarios_per_point, 100u);
  EXPECT_EQ(cli.spec.sweep.points.size(), 9u);  // default 0.1:0.9:9 grid
  ASSERT_EQ(cli.spec.sweep.policies.size(), 3u);
  EXPECT_EQ(cli.spec.sweep.policies[0], engine::Policy::Fcfs);
  EXPECT_EQ(cli.threads, 0u);
  // Optimizer bracket defaults.
  EXPECT_EQ(cli.spec.options.scale_lo_q, 64);
  EXPECT_EQ(cli.spec.options.scale_hi_q, 16 * 1024);
  EXPECT_EQ(cli.spec.options.ttr_cap, 1 << 24);
}

TEST(OptCli, BracketFlagsConvertToQ1024) {
  const OptimizeCli cli =
      parse_ok({"--scale-lo", "0.25", "--scale-hi", "8", "--ttr-cap", "50000", "--dratio-lo",
                "0.5", "--dratio-hi", "4"});
  EXPECT_EQ(cli.spec.options.scale_lo_q, 256);
  EXPECT_EQ(cli.spec.options.scale_hi_q, 8 * 1024);
  EXPECT_EQ(cli.spec.options.ttr_cap, 50'000);
  EXPECT_EQ(cli.spec.options.dratio_lo_q, 512);
  EXPECT_EQ(cli.spec.options.dratio_hi_q, 4 * 1024);
}

TEST(OptCli, AcceptsTheOptimizableFourOnly) {
  const OptimizeCli cli = parse_ok({"--policies", "fcfs,dm,edf,opa"});
  EXPECT_EQ(cli.spec.sweep.policies.size(), 4u);
  EXPECT_NE(parse_fail({"--policies", "fcfs,token"}).find("TOKEN"), std::string::npos);
  (void)parse_fail({"--policies", "holistic"});
  (void)parse_fail({"--policies", "fcfs,fcfs"});
}

TEST(OptCli, GridAndOutputFlagsFlowThrough) {
  const OptimizeCli cli =
      parse_ok({"--scenarios", "7", "--u", "0.2:0.6:3", "--seed", "42", "--threads", "4",
                "--method", "refined", "--csv", "out.csv", "--json", "out.json", "--cache",
                "dir"});
  EXPECT_EQ(cli.spec.sweep.scenarios_per_point, 7u);
  EXPECT_EQ(cli.spec.sweep.points.size(), 3u);
  EXPECT_EQ(cli.spec.sweep.seed, 42u);
  EXPECT_EQ(cli.threads, 4u);
  EXPECT_EQ(cli.spec.sweep.engine.method, profibus::TcycleMethod::PerMasterRefined);
  EXPECT_EQ(cli.csv_path, "out.csv");
  EXPECT_EQ(cli.json_path, "out.json");
  EXPECT_EQ(cli.cache_dir, "dir");
}

TEST(OptCli, RejectsMalformedFlags) {
  (void)parse_fail({"--bogus"});
  (void)parse_fail({"--scenarios", "0"});
  (void)parse_fail({"--scale-lo", "-1"});
  (void)parse_fail({"--scale-lo", "0"});
  (void)parse_fail({"--scale-lo", "4", "--scale-hi", "2"});
  (void)parse_fail({"--dratio-lo", "4", "--dratio-hi", "2"});
  (void)parse_fail({"--ttr-cap", "0"});
  (void)parse_fail({"--method", "magic"});
  (void)parse_fail({"--u", "0.9:0.1:5"});  // inverted grid
  (void)parse_fail({"--csv"});             // missing value
}

TEST(OptCli, OutputDestinationsAreValidatedUpFront) {
  EXPECT_NE(parse_fail({"--csv", "/nonexistent_profisched/out.csv"}).find("--csv"),
            std::string::npos);
  EXPECT_NE(parse_fail({"--json", "/nonexistent_profisched/o.json"}).find("--json"),
            std::string::npos);
  EXPECT_NE(parse_fail({"--metrics", "/nonexistent_profisched/m.json"}).find("--metrics"),
            std::string::npos);
  EXPECT_NE(parse_fail({"--cache", "/dev/null/cache"}).find("--cache"), std::string::npos);
}

}  // namespace
}  // namespace profisched::opt
