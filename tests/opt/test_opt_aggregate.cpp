// OptimizeTable aggregation + serialization (PR 6): nearest-rank quantiles
// on hand-built outcome sets, zero-filled infeasible cells, multi-axis
// masters column gating, and exact CSV/JSON round trips (the golden-file and
// shard-merge identities both ride on these).
#include "opt/opt_aggregate.hpp"

#include <gtest/gtest.h>

namespace profisched::opt {
namespace {

OptimizeSpec two_point_spec() {
  OptimizeSpec spec;
  spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  spec.sweep.scenarios_per_point = 4;
  spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm};
  return spec;
}

PolicyOptimum optimum(bool sched, Ticks bq, double bu, Ticks ttr, Ticks dq) {
  PolicyOptimum po;
  po.schedulable = sched;
  po.breakdown_q = bq;
  po.breakdown_u = bu;
  po.max_ttr = ttr;
  po.min_dratio_q = dq;
  return po;
}

TEST(OptAggregate, QuantileIndexIsNearestRank) {
  EXPECT_EQ(quantile_index(1, 50), 0u);
  EXPECT_EQ(quantile_index(1, 90), 0u);
  EXPECT_EQ(quantile_index(2, 50), 0u);   // ceil(0.5·2) = 1 → index 0
  EXPECT_EQ(quantile_index(2, 90), 1u);   // ceil(0.9·2) = 2 → index 1
  EXPECT_EQ(quantile_index(4, 50), 1u);
  EXPECT_EQ(quantile_index(10, 50), 4u);
  EXPECT_EQ(quantile_index(10, 90), 8u);
  EXPECT_EQ(quantile_index(10, 100), 9u);
  EXPECT_EQ(quantile_index(0, 50), 0u);  // degenerate, never dereferenced
}

TEST(OptAggregate, FoldsOutcomesIntoPerPointDistributions) {
  const OptimizeSpec spec = two_point_spec();
  OptimizeResult result;
  // Point 0: FCFS feasible on 3 of 4 scenarios, DM on none.
  for (std::size_t i = 0; i < 4; ++i) {
    OptimizeOutcome o;
    o.id = i;
    o.point = 0;
    const bool feasible = i < 3;
    o.per_policy.push_back(optimum(feasible, feasible ? Ticks(1'000 + 100 * i) : 0,
                                   feasible ? 0.5 + 0.1 * static_cast<double>(i) : 0.0,
                                   feasible ? Ticks(10'000 + 1'000 * i) : 0,
                                   feasible ? Ticks(512 + 64 * i) : 0));
    o.per_policy.push_back(optimum(false, 0, 0.0, 0, 0));
    result.outcomes.push_back(o);
  }
  const OptimizeTable table = aggregate_optimize(spec, result);

  ASSERT_EQ(table.policies.size(), 2u);
  EXPECT_EQ(table.policies[0], "FCFS");
  ASSERT_EQ(table.points.size(), 2u);
  const OptimumStats& fcfs = table.points[0].stats[0];
  EXPECT_EQ(table.points[0].scenarios, 4u);
  EXPECT_EQ(fcfs.schedulable, 3u);
  EXPECT_EQ(fcfs.breakdown_feasible, 3u);
  EXPECT_DOUBLE_EQ(fcfs.breakdown_u_min, 0.5);
  EXPECT_DOUBLE_EQ(fcfs.breakdown_u_p50, 0.6);  // nearest rank of {0.5, 0.6, 0.7}
  EXPECT_DOUBLE_EQ(fcfs.breakdown_u_p90, 0.7);
  EXPECT_DOUBLE_EQ(fcfs.breakdown_u_max, 0.7);
  EXPECT_EQ(fcfs.ttr_feasible, 3u);
  EXPECT_EQ(fcfs.max_ttr_p50, 11'000);
  EXPECT_EQ(fcfs.max_ttr_max, 12'000);
  EXPECT_EQ(fcfs.dratio_feasible, 3u);
  EXPECT_DOUBLE_EQ(fcfs.min_dratio_min, 512.0 / 1024.0);
  EXPECT_DOUBLE_EQ(fcfs.min_dratio_p50, 576.0 / 1024.0);

  // The all-infeasible DM cell zero-fills its quantiles.
  const OptimumStats& dm = table.points[0].stats[1];
  EXPECT_EQ(dm.schedulable, 0u);
  EXPECT_EQ(dm.breakdown_feasible, 0u);
  EXPECT_DOUBLE_EQ(dm.breakdown_u_p50, 0.0);
  EXPECT_EQ(dm.max_ttr_max, 0);

  // Point 1 received no outcomes (a shard-slice fold): zero scenarios.
  EXPECT_EQ(table.points[1].scenarios, 0u);
}

TEST(OptAggregate, CsvRoundTripsExactly) {
  const OptimizeSpec spec = two_point_spec();
  OptimizeResult result;
  for (std::size_t i = 0; i < 8; ++i) {
    OptimizeOutcome o;
    o.id = i;
    o.point = i / 4;
    o.per_policy.push_back(
        optimum(i % 2 == 0, Ticks(900 + 31 * i), 0.25 + 0.05 * static_cast<double>(i),
                Ticks(5'000 + 777 * i), Ticks(300 + 17 * i)));
    o.per_policy.push_back(optimum(false, 0, 0.0, 0, 0));
    result.outcomes.push_back(o);
  }
  const OptimizeTable table = aggregate_optimize(spec, result);
  const std::string csv = table.to_csv();
  EXPECT_EQ(OptimizeTable::from_csv(csv).to_csv(), csv);
  // Classic (no masters axis) layout: 17 columns.
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "u,beta_lo,beta_hi,scenarios,policy,schedulable,breakdown_feasible,"
            "breakdown_u_min,breakdown_u_p50,breakdown_u_p90,breakdown_u_max,ttr_feasible,"
            "max_ttr_p50,max_ttr_max,dratio_feasible,min_dratio_p50,min_dratio_min");
}

TEST(OptAggregate, JsonRoundTripsExactly) {
  const OptimizeSpec spec = two_point_spec();
  OptimizeResult result;
  OptimizeOutcome o;
  o.point = 1;
  o.per_policy.push_back(optimum(true, 2'048, 0.625, 40'000, 256));
  o.per_policy.push_back(optimum(true, 1'024, 0.5, 20'000, 1'024));
  result.outcomes.push_back(o);
  const OptimizeTable table = aggregate_optimize(spec, result);
  const std::string json = table.to_json();
  EXPECT_EQ(OptimizeTable::from_json(json).to_json(), json);
}

TEST(OptAggregate, MastersAxisGatesTheExtraColumn) {
  OptimizeSpec spec = two_point_spec();
  spec.sweep.points[0].n_masters = 1;
  spec.sweep.points[1].n_masters = 8;
  OptimizeResult result;
  OptimizeOutcome o;
  o.point = 0;
  o.per_policy.push_back(optimum(true, 1'100, 0.4, 9'000, 700));
  o.per_policy.push_back(optimum(false, 0, 0.0, 0, 0));
  result.outcomes.push_back(o);
  const OptimizeTable table = aggregate_optimize(spec, result);

  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("u,beta_lo,beta_hi,masters,"), std::string::npos);
  const OptimizeTable back = OptimizeTable::from_csv(csv);
  ASSERT_EQ(back.points.size(), 2u);
  EXPECT_EQ(back.points[0].n_masters, 1u);
  EXPECT_EQ(back.points[1].n_masters, 8u);
  EXPECT_EQ(back.to_csv(), csv);

  const std::string json = table.to_json();
  EXPECT_NE(json.find("\"masters\": 8"), std::string::npos);
  EXPECT_EQ(OptimizeTable::from_json(json).to_json(), json);
}

TEST(OptAggregate, FromCsvRejectsGarbage) {
  EXPECT_THROW((void)OptimizeTable::from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)OptimizeTable::from_csv("a,b,c\n"), std::invalid_argument);
  const OptimizeTable table = aggregate_optimize(two_point_spec(), OptimizeResult{});
  std::string csv = table.to_csv();
  csv += "0.5,0.5,1.0,4,FCFS,1\n";  // truncated row
  EXPECT_THROW((void)OptimizeTable::from_csv(csv), std::invalid_argument);
}

}  // namespace
}  // namespace profisched::opt
