// Optimizer contract (PR 6): thread-count invariance, base-verdict agreement
// with the sweep runner, exact boundary semantics of every bisected optimum,
// result-cache hit/miss accounting with bit-identical hit-path outcomes, and
// loud rejection of malformed specs/ranges.
#include "opt/optimizer.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "dist/result_cache.hpp"

namespace profisched::opt {
namespace {

namespace fs = std::filesystem;

class CacheDir {
 public:
  explicit CacheDir(const char* name)
      : path_((fs::temp_directory_path() / "profisched_opt_test" / name).string()) {
    fs::remove_all(path_);
  }
  ~CacheDir() { fs::remove_all(fs::path(path_).parent_path()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

OptimizeSpec small_spec() {
  OptimizeSpec spec;
  spec.sweep.base.n_masters = 2;
  spec.sweep.base.streams_per_master = 3;
  spec.sweep.base.ttr = 3'000;
  spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  spec.sweep.scenarios_per_point = 6;
  spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  spec.sweep.seed = 99;
  return spec;
}

void expect_same(const OptimizeResult& a, const OptimizeResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].seed, b.outcomes[i].seed);
    EXPECT_EQ(a.outcomes[i].point, b.outcomes[i].point);
    ASSERT_EQ(a.outcomes[i].per_policy.size(), b.outcomes[i].per_policy.size());
    for (std::size_t p = 0; p < a.outcomes[i].per_policy.size(); ++p) {
      const PolicyOptimum& x = a.outcomes[i].per_policy[p];
      const PolicyOptimum& y = b.outcomes[i].per_policy[p];
      EXPECT_EQ(x.schedulable, y.schedulable) << i << "/" << p;
      EXPECT_EQ(x.breakdown_q, y.breakdown_q) << i << "/" << p;
      EXPECT_EQ(x.breakdown_cap, y.breakdown_cap) << i << "/" << p;
      EXPECT_EQ(x.breakdown_u, y.breakdown_u) << i << "/" << p;  // exact doubles
      EXPECT_EQ(x.max_ttr, y.max_ttr) << i << "/" << p;
      EXPECT_EQ(x.ttr_cap_hit, y.ttr_cap_hit) << i << "/" << p;
      EXPECT_EQ(x.min_dratio_q, y.min_dratio_q) << i << "/" << p;
      EXPECT_EQ(x.dratio_floor, y.dratio_floor) << i << "/" << p;
    }
  }
}

TEST(Optimizer, ThreadCountInvariant) {
  const OptimizeSpec spec = small_spec();
  engine::SweepRunner serial(1);
  engine::SweepRunner parallel(4);
  expect_same(run_optimize(serial, spec), run_optimize(parallel, spec));
}

TEST(Optimizer, BaseVerdictMatchesTheSweepRunner) {
  const OptimizeSpec spec = small_spec();
  engine::SweepRunner runner(2);
  const engine::SweepResult sweep = runner.run(spec.sweep);
  const OptimizeResult opt = run_optimize(runner, spec);
  ASSERT_EQ(opt.outcomes.size(), sweep.outcomes.size());
  for (std::size_t i = 0; i < opt.outcomes.size(); ++i) {
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      EXPECT_EQ(opt.outcomes[i].per_policy[p].schedulable, sweep.outcomes[i].schedulable[p])
          << "scenario " << i << " policy " << p;
    }
  }
}

TEST(Optimizer, EveryBoundaryIsExact) {
  const OptimizeSpec spec = small_spec();
  engine::SweepRunner runner(2);
  const OptimizeResult result = run_optimize(runner, spec);

  for (const OptimizeOutcome& o : result.outcomes) {
    const engine::Scenario sc = engine::SweepRunner::make_scenario(spec.sweep, o.id);
    for (std::size_t p = 0; p < spec.sweep.policies.size(); ++p) {
      const PolicyOptimum& po = o.per_policy[p];
      const profibus::NetworkTest test =
          optimize_network_test(spec.sweep.policies[p], spec.sweep.engine);

      if (po.breakdown_q > 0) {
        EXPECT_TRUE(test(profibus::with_scaled_frames(sc.net, po.breakdown_q)));
        if (!po.breakdown_cap) {
          EXPECT_FALSE(test(profibus::with_scaled_frames(sc.net, po.breakdown_q + 1)));
        }
        EXPECT_EQ(po.breakdown_u, breakdown_utilization_at(sc.net, po.breakdown_q));
      } else {
        // Infeasible: even the bracket floor is rejected.
        EXPECT_FALSE(test(profibus::with_scaled_frames(sc.net, spec.options.scale_lo_q)));
      }

      if (po.max_ttr > 0) {
        EXPECT_TRUE(test(profibus::with_ttr(sc.net, po.max_ttr)));
        if (!po.ttr_cap_hit) {
          EXPECT_FALSE(test(profibus::with_ttr(sc.net, po.max_ttr + 1)));
        }
      }

      if (po.min_dratio_q > 0) {
        EXPECT_TRUE(test(profibus::with_deadline_ratio(sc.net, po.min_dratio_q)));
        if (!po.dratio_floor) {
          EXPECT_FALSE(test(profibus::with_deadline_ratio(sc.net, po.min_dratio_q - 1)));
        }
      }
    }
  }
}

TEST(Optimizer, RangedRunMatchesTheWholeRunSlice) {
  const OptimizeSpec spec = small_spec();
  engine::SweepRunner runner(2);
  const OptimizeResult whole = run_optimize(runner, spec);
  const engine::IdRange range{3, 9};
  const OptimizeResult part = run_optimize(runner, spec, range);
  ASSERT_EQ(part.outcomes.size(), 6u);
  for (std::size_t i = 0; i < part.outcomes.size(); ++i) {
    EXPECT_EQ(part.outcomes[i].id, whole.outcomes[i + 3].id);
    EXPECT_EQ(part.outcomes[i].per_policy[0].breakdown_q,
              whole.outcomes[i + 3].per_policy[0].breakdown_q);
  }
}

TEST(Optimizer, CacheColdThenWarmIsExactAndBitIdentical) {
  const CacheDir dir("optimize");
  const OptimizeSpec spec = small_spec();
  engine::SweepRunner runner(2);
  const OptimizeResult plain = run_optimize(runner, spec);

  dist::ResultCache cache(dir.path());
  const OptimizeResult cold = run_optimize(runner, spec, &cache);
  const std::size_t cells = spec.sweep.total_scenarios() * spec.sweep.policies.size();
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cells);
  expect_same(cold, plain);

  const OptimizeResult warm = run_optimize(runner, spec, &cache);
  EXPECT_EQ(warm.cache_hits, cells);
  EXPECT_EQ(warm.cache_misses, 0u);
  expect_same(warm, plain);
}

TEST(Optimizer, OptionChangesInvalidateTheCache) {
  const CacheDir dir("options");
  OptimizeSpec spec = small_spec();
  engine::SweepRunner runner(2);
  dist::ResultCache cache(dir.path());
  (void)run_optimize(runner, spec, &cache);
  spec.options.ttr_cap *= 2;  // different params digest → clean misses
  const OptimizeResult rerun = run_optimize(runner, spec, &cache);
  EXPECT_EQ(rerun.cache_hits, 0u);
}

TEST(Optimizer, RejectsBadSpecsAndRanges) {
  engine::SweepRunner runner(1);
  OptimizeSpec spec = small_spec();

  OptimizeSpec no_policies = spec;
  no_policies.sweep.policies.clear();
  EXPECT_THROW((void)run_optimize(runner, no_policies), std::invalid_argument);

  OptimizeSpec token = spec;
  token.sweep.policies = {engine::Policy::TokenRing};
  EXPECT_THROW((void)run_optimize(runner, token), std::invalid_argument);

  OptimizeSpec bad_bracket = spec;
  bad_bracket.options.scale_lo_q = 2'048;
  bad_bracket.options.scale_hi_q = 1'024;
  EXPECT_THROW((void)run_optimize(runner, bad_bracket), std::invalid_argument);

  EXPECT_THROW((void)run_optimize(runner, spec, engine::IdRange{0, 1'000}), std::out_of_range);
  EXPECT_FALSE(optimizable(engine::Policy::Holistic));
  EXPECT_THROW((void)optimize_network_test(engine::Policy::TokenRing, spec.sweep.engine),
               std::invalid_argument);
}

}  // namespace
}  // namespace profisched::opt
