// The observability layer's core guarantee: turning on --metrics/--progress
// instrumentation changes ZERO bytes of any primary artifact. Each test runs
// the same small sweep with telemetry off and fully on (timed spans + the
// progress heartbeat) and compares the serialized outputs byte-for-byte,
// across every engine backend (analysis, sim, combined, optimize).
#include <gtest/gtest.h>

#include <string>

#include "engine/aggregate.hpp"
#include "engine/sim_aggregate.hpp"
#include "engine/sweep_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "opt/opt_aggregate.hpp"
#include "opt/optimizer.hpp"

namespace profisched {
namespace {

/// Flips both telemetry switches for a scope and restores them on exit.
class ObsFlagsGuard {
 public:
  ObsFlagsGuard(bool enabled, bool progress)
      : was_enabled_(obs::enabled()), was_progress_(obs::progress_enabled()) {
    obs::set_enabled(enabled);
    obs::set_progress_enabled(progress);
  }
  ~ObsFlagsGuard() {
    obs::set_enabled(was_enabled_);
    obs::set_progress_enabled(was_progress_);
  }

 private:
  bool was_enabled_;
  bool was_progress_;
};

engine::SimSweepSpec small_spec() {
  engine::SimSweepSpec spec;
  spec.sweep.base.n_masters = 1;
  spec.sweep.base.streams_per_master = 4;
  spec.sweep.base.ttr = 3'000;
  spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  spec.sweep.scenarios_per_point = 8;
  spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  spec.sweep.seed = 4242;
  spec.replications = 2;
  spec.sim.horizon_cycles = 25.0;
  return spec;
}

TEST(ObsByteIdentity, AnalysisSweepOutputsAreIdentical) {
  const engine::SimSweepSpec spec = small_spec();
  std::string off_csv, off_json, on_csv, on_json;
  {
    const ObsFlagsGuard flags(false, false);
    engine::SweepRunner runner(2);
    const engine::SweepCurves curves =
        engine::aggregate(spec.sweep, runner.run(spec.sweep, nullptr));
    off_csv = curves.to_csv();
    off_json = curves.to_json();
  }
  {
    const ObsFlagsGuard flags(true, true);
    engine::SweepRunner runner(2);
    const engine::SweepCurves curves =
        engine::aggregate(spec.sweep, runner.run(spec.sweep, nullptr));
    on_csv = curves.to_csv();
    on_json = curves.to_json();
  }
  EXPECT_EQ(off_csv, on_csv);
  EXPECT_EQ(off_json, on_json);
}

TEST(ObsByteIdentity, SimSweepOutputsAreIdentical) {
  const engine::SimSweepSpec spec = small_spec();
  std::string off_csv, on_csv;
  {
    const ObsFlagsGuard flags(false, false);
    engine::SweepRunner runner(2);
    off_csv = engine::aggregate_sim(spec, runner.run_sim(spec, nullptr)).to_csv();
  }
  {
    const ObsFlagsGuard flags(true, true);
    engine::SweepRunner runner(2);
    on_csv = engine::aggregate_sim(spec, runner.run_sim(spec, nullptr)).to_csv();
  }
  EXPECT_EQ(off_csv, on_csv);
}

TEST(ObsByteIdentity, CombinedSweepOutputsAreIdentical) {
  engine::SimSweepSpec spec = small_spec();
  spec.sim.faults.token_loss_prob = 0.02;  // exercise the fault bridge too
  spec.sim.faults.token_recovery = 600;
  std::string off_csv, on_csv;
  {
    const ObsFlagsGuard flags(false, false);
    engine::SweepRunner runner(2);
    off_csv = engine::consistency_table(spec, runner.run_combined(spec, nullptr)).to_csv();
  }
  {
    const ObsFlagsGuard flags(true, true);
    engine::SweepRunner runner(2);
    on_csv = engine::consistency_table(spec, runner.run_combined(spec, nullptr)).to_csv();
  }
  EXPECT_EQ(off_csv, on_csv);
}

TEST(ObsByteIdentity, OptimizeOutputsAreIdentical) {
  opt::OptimizeSpec spec;
  spec.sweep = small_spec().sweep;
  spec.sweep.scenarios_per_point = 4;
  std::string off_csv, off_json, on_csv, on_json;
  {
    const ObsFlagsGuard flags(false, false);
    engine::SweepRunner runner(2);
    const opt::OptimizeTable table =
        opt::aggregate_optimize(spec, opt::run_optimize(runner, spec, nullptr));
    off_csv = table.to_csv();
    off_json = table.to_json();
  }
  {
    const ObsFlagsGuard flags(true, true);
    engine::SweepRunner runner(2);
    const opt::OptimizeTable table =
        opt::aggregate_optimize(spec, opt::run_optimize(runner, spec, nullptr));
    on_csv = table.to_csv();
    on_json = table.to_json();
  }
  EXPECT_EQ(off_csv, on_csv);
  EXPECT_EQ(off_json, on_json);
}

}  // namespace
}  // namespace profisched
