// Unit tests for the telemetry registry: concurrent counter/gauge/histogram
// hammering (snapshot-equals-sum once writers join — the TSan CI job runs
// this suite), snapshot ordering/trimming, reset semantics, and the Span
// enabled/disabled contract. Every test uses its own series names: the
// registry is process-global and the gtest binary runs tests sequentially,
// so fresh names keep tests independent without needing isolation.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace profisched::obs {
namespace {

TEST(ObsCounter, ConcurrentAddsSumExactlyAfterJoin) {
  Counter c = Registry::global().counter("test.counter.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
  EXPECT_EQ(Registry::global().snapshot().counter("test.counter.concurrent"),
            kThreads * kAddsPerThread);
}

TEST(ObsCounter, SameNameSharesState) {
  Counter a = Registry::global().counter("test.counter.shared");
  Counter b = Registry::global().counter("test.counter.shared");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
}

TEST(ObsGauge, ConcurrentUpdateMaxKeepsTheMaximum) {
  Gauge g = Registry::global().gauge("test.gauge.hwm");
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g, t] {
      for (std::uint64_t i = 0; i < 10'000; ++i) {
        g.update_max(static_cast<std::uint64_t>(t) * 10'000 + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(g.value(), 7u * 10'000 + 9'999);
}

TEST(ObsHistogram, BinsByBitWidthAndSumsValues) {
  Histogram h = Registry::global().histogram("test.hist.bins");
  h.record(0);  // bin 0
  h.record(1);  // bin 1: width 1
  h.record(2);  // bin 2: width 2
  h.record(3);  // bin 2
  h.record(1024);  // bin 11
  h.record(~std::uint64_t{0});  // width 64 -> capped at bin 63

  const Snapshot snap = Registry::global().snapshot();
  const HistogramSample* s = nullptr;
  for (const HistogramSample& hs : snap.histograms) {
    if (hs.name == "test.hist.bins") s = &hs;
  }
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 6u);
  EXPECT_EQ(s->sum, 0u + 1 + 2 + 3 + 1024 + ~std::uint64_t{0});
  ASSERT_EQ(s->bins.size(), 64u);  // bin 63 populated, nothing to trim
  EXPECT_EQ(s->bins[0], 1u);
  EXPECT_EQ(s->bins[1], 1u);
  EXPECT_EQ(s->bins[2], 2u);
  EXPECT_EQ(s->bins[11], 1u);
  EXPECT_EQ(s->bins[63], 1u);
  std::uint64_t total = 0;
  for (const std::uint64_t b : s->bins) total += b;
  EXPECT_EQ(total, s->count);
}

TEST(ObsHistogram, ConcurrentRecordsSumExactlyAfterJoin) {
  Histogram h = Registry::global().histogram("test.hist.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(i & 0xff);
    });
  }
  for (std::thread& w : workers) w.join();
  const Snapshot snap = Registry::global().snapshot();
  for (const HistogramSample& hs : snap.histograms) {
    if (hs.name != "test.hist.concurrent") continue;
    EXPECT_EQ(hs.count, kThreads * kPerThread);
    std::uint64_t total = 0;
    for (const std::uint64_t b : hs.bins) total += b;
    EXPECT_EQ(total, hs.count);
  }
}

TEST(ObsSnapshot, SeriesAreSortedByNameAndLookupsWork) {
  Registry& reg = Registry::global();
  (void)reg.counter("test.sort.zzz");
  (void)reg.counter("test.sort.aaa");
  (void)reg.gauge("test.sort.gauge");
  (void)reg.timer("test.sort.timer");
  const Snapshot snap = reg.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  for (std::size_t i = 1; i < snap.timers.size(); ++i) {
    EXPECT_LT(snap.timers[i - 1].name, snap.timers[i].name);
  }
  EXPECT_EQ(snap.counter("test.sort.aaa"), 0u);
  EXPECT_EQ(snap.counter("test.absent"), 0u);
  EXPECT_EQ(snap.gauge("test.sort.gauge"), 0u);
  EXPECT_EQ(snap.timer("test.sort.timer").count, 0u);
}

TEST(ObsSpan, RecordsOnlyWhenEnabled) {
  Timer t = Registry::global().timer("test.span.timer");
  const bool was_enabled = enabled();
  set_enabled(false);
  { const Span s(t); }
  EXPECT_EQ(t.count(), 0u);

  set_enabled(true);
  { const Span s(t); }
  EXPECT_EQ(t.count(), 1u);

  // stop() is idempotent: the dtor after an explicit stop records nothing.
  {
    Span s(t);
    s.stop();
    s.stop();
  }
  EXPECT_EQ(t.count(), 2u);
  set_enabled(was_enabled);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsHandlesLive) {
  Registry& reg = Registry::global();
  Counter c = reg.counter("test.reset.counter");
  Gauge g = reg.gauge("test.reset.gauge");
  Timer t = reg.timer("test.reset.timer");
  c.add(5);
  g.set(9);
  t.record(123);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.total_ns(), 0u);
  c.add(2);  // the handle still points at live state
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(reg.snapshot().counter("test.reset.counter"), 2u);
}

TEST(ObsHandles, DefaultConstructedHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Timer t;
  Histogram h;
  c.add(1);
  g.set(1);
  g.update_max(2);
  t.record(1);
  h.record(1);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(t.count(), 0u);
}

}  // namespace
}  // namespace profisched::obs
