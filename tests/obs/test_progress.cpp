// Unit tests for the --progress stderr heartbeat, pinning the two lifecycle
// fixes: the destructor's final line is serialized against (and deduplicated
// with) concurrent winning ticks, and a zero-rate report says "eta ?" rather
// than extrapolating a bogus 0.0s.
#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace profisched::obs {
namespace {

TEST(ProgressMeter, ZeroRateLineMarksEtaUnknown) {
  ProgressMeter meter("analysis", 100);
  // Non-positive elapsed (here: a `now` before construction, the clock-skew
  // guard) forces rate 0 — the line must not claim "eta 0.0s".
  const std::string at_start = meter.line(0, now_ns() - 3'600'000'000'000);
  EXPECT_NE(at_start.find("eta ?"), std::string::npos) << at_start;
  EXPECT_EQ(at_start.find("eta 0.0s"), std::string::npos) << at_start;
}

TEST(ProgressMeter, PositiveRateLineStillReportsNumericEta) {
  ProgressMeter meter("analysis", 100);
  // 50 items in ~1s → rate ~50/s, 50 left → eta ~1.0s.
  const std::string line = meter.line(50, now_ns() + 1'000'000'000);
  EXPECT_NE(line.find("50/100"), std::string::npos) << line;
  EXPECT_NE(line.find("eta "), std::string::npos) << line;
  EXPECT_EQ(line.find("eta ?"), std::string::npos) << line;
}

TEST(ProgressMeter, FinalLineIsNotDuplicatedWhenLastTickAlreadyReportedIt) {
  testing::internal::CaptureStderr();
  {
    // heartbeat 0: every tick wins a print window, so the last tick emits
    // "3/3" and the destructor would previously repeat it verbatim.
    ProgressMeter meter("dedupe", 3, /*heartbeat_ns=*/0);
    meter.tick();
    meter.tick();
    meter.tick();
  }
  const std::string err = testing::internal::GetCapturedStderr();
  std::size_t finals = 0;
  for (std::size_t pos = err.find("3/3"); pos != std::string::npos;
       pos = err.find("3/3", pos + 1)) {
    ++finals;
  }
  EXPECT_EQ(finals, 1u) << err;
}

TEST(ProgressMeter, DestructorClosesWithFinalCountAfterQuietTail) {
  testing::internal::CaptureStderr();
  {
    ProgressMeter meter("close", 3, /*heartbeat_ns=*/50'000'000);
    meter.tick();  // sub-heartbeat: silent
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    meter.tick();  // crosses the deadline: prints 2/3, next window +50 ms
    meter.tick();  // inside the fresh window: silent — final count unreported
  }  // the destructor owes the close
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("close 2/3"), std::string::npos) << err;
  EXPECT_NE(err.find("close 3/3"), std::string::npos) << err;
}

TEST(ProgressMeter, SubHeartbeatRunsStaySilent) {
  testing::internal::CaptureStderr();
  {
    ProgressMeter meter("quiet", 10);  // default 250 ms heartbeat: never due
    for (int i = 0; i < 10; ++i) meter.tick();
  }
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(ProgressMeter, ConcurrentTicksAndDestructionEmitWholeLines) {
  testing::internal::CaptureStderr();
  {
    ProgressMeter meter("race", 4000, /*heartbeat_ns=*/0);
    std::vector<std::thread> workers;
    workers.reserve(4);
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&meter] {
        for (int i = 0; i < 1000; ++i) meter.tick();
      });
    }
    for (std::thread& t : workers) t.join();
  }  // destructor races nothing here, but every printed line must be whole
  const std::string err = testing::internal::GetCapturedStderr();
  ASSERT_FALSE(err.empty());
  // Interleaved writes would corrupt the line structure: every line must
  // start with the meter prefix and end with an eta field.
  std::size_t begin = 0;
  while (begin < err.size()) {
    std::size_t end = err.find('\n', begin);
    ASSERT_NE(end, std::string::npos);
    const std::string line = err.substr(begin, end - begin);
    EXPECT_EQ(line.rfind("progress: race ", 0), 0u) << line;
    EXPECT_NE(line.find(" eta "), std::string::npos) << line;
    begin = end + 1;
  }
}

}  // namespace
}  // namespace profisched::obs
