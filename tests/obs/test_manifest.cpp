// Unit tests for the --metrics run-manifest sidecar: full JSON round-trip
// through to_json/parse_manifest, string sanitization into the engine's
// escape-free grammar, schema-version rejection, and the file writer.
#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace profisched::obs {
namespace {

Manifest sample_manifest() {
  Manifest m;
  m.run.subcommand = "sweep";
  m.run.argv = {"--scenarios", "40", "--u", "0.2:0.8:4"};
  m.run.config_digest = 0xdeadbeefcafef00dULL;
  m.run.scenarios = 160;
  m.run.points = 4;
  m.run.policies = 3;
  m.run.replications = 1;
  m.run.threads = 8;
  m.run.elapsed_s = 1.25;
  m.metrics.counters = {{"cache.hits", 12}, {"cache.misses", 4}};
  m.metrics.gauges = {{"pool.queue_depth_hwm", 7}};
  m.metrics.timers = {{"phase.run", 1, 1'000'000}, {"runner.analyze", 160, 900'000}};
  HistogramSample h;
  h.name = "pool.task_latency_ns";
  h.count = 3;
  h.sum = 70;
  h.bins = {0, 0, 0, 1, 0, 2};
  m.metrics.histograms = {h};
  return m;
}

TEST(ObsManifest, RoundTripsEveryField) {
  const Manifest m = sample_manifest();
  const Manifest r = parse_manifest(to_json(m));

  EXPECT_EQ(r.run.tool, "profisched");
  EXPECT_EQ(r.run.subcommand, m.run.subcommand);
  EXPECT_EQ(r.run.argv, m.run.argv);
  EXPECT_EQ(r.run.config_digest, m.run.config_digest);
  EXPECT_EQ(r.run.scenarios, m.run.scenarios);
  EXPECT_EQ(r.run.points, m.run.points);
  EXPECT_EQ(r.run.policies, m.run.policies);
  EXPECT_EQ(r.run.replications, m.run.replications);
  EXPECT_EQ(r.run.threads, m.run.threads);
  EXPECT_DOUBLE_EQ(r.run.elapsed_s, m.run.elapsed_s);

  ASSERT_EQ(r.metrics.counters.size(), 2u);
  EXPECT_EQ(r.metrics.counters[0].name, "cache.hits");
  EXPECT_EQ(r.metrics.counters[0].value, 12u);
  EXPECT_EQ(r.metrics.counters[1].value, 4u);
  ASSERT_EQ(r.metrics.gauges.size(), 1u);
  EXPECT_EQ(r.metrics.gauges[0].value, 7u);
  ASSERT_EQ(r.metrics.timers.size(), 2u);
  EXPECT_EQ(r.metrics.timers[1].count, 160u);
  EXPECT_EQ(r.metrics.timers[1].total_ns, 900'000u);
  ASSERT_EQ(r.metrics.histograms.size(), 1u);
  EXPECT_EQ(r.metrics.histograms[0].count, 3u);
  EXPECT_EQ(r.metrics.histograms[0].sum, 70u);
  EXPECT_EQ(r.metrics.histograms[0].bins, (std::vector<std::uint64_t>{0, 0, 0, 1, 0, 2}));
}

TEST(ObsManifest, RoundTripsEmptySections) {
  Manifest m;
  m.run.subcommand = "merge";
  const Manifest r = parse_manifest(to_json(m));
  EXPECT_EQ(r.run.subcommand, "merge");
  EXPECT_TRUE(r.run.argv.empty());
  EXPECT_TRUE(r.metrics.counters.empty());
  EXPECT_TRUE(r.metrics.gauges.empty());
  EXPECT_TRUE(r.metrics.timers.empty());
  EXPECT_TRUE(r.metrics.histograms.empty());
}

TEST(ObsManifest, SanitizesStringsIntoTheEscapeFreeGrammar) {
  Manifest m;
  m.run.subcommand = "swe\"ep";
  m.run.argv = {"--csv", "a\\b\nc"};
  const std::string json = to_json(m);
  EXPECT_EQ(json.find("swe\"ep"), std::string::npos);
  const Manifest r = parse_manifest(json);
  EXPECT_EQ(r.run.subcommand, "swe?ep");
  ASSERT_EQ(r.run.argv.size(), 2u);
  EXPECT_EQ(r.run.argv[1], "a?b?c");
}

TEST(ObsManifest, RejectsUnknownSchema) {
  std::string json = to_json(sample_manifest());
  const std::size_t pos = json.find(kManifestSchema);
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, std::string(kManifestSchema).size(), "profisched-metrics-v999");
  EXPECT_THROW((void)parse_manifest(json), std::invalid_argument);
}

TEST(ObsManifest, RejectsTruncatedInput) {
  const std::string json = to_json(sample_manifest());
  EXPECT_THROW((void)parse_manifest(json.substr(0, json.size() / 2)), std::invalid_argument);
}

TEST(ObsManifest, WriteManifestFileRoundTrips) {
  const Manifest m = sample_manifest();
  const std::string path = "build/obs_manifest_test.json";
  ASSERT_TRUE(write_manifest_file(path, m));
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  std::ostringstream text;
  text << is.rdbuf();
  EXPECT_EQ(text.str(), to_json(m));
  const Manifest r = parse_manifest(text.str());
  EXPECT_EQ(r.run.config_digest, m.run.config_digest);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace profisched::obs
