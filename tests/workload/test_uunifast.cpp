// Unit tests for UUniFast.
#include "workload/uunifast.hpp"

#include <numeric>

#include <gtest/gtest.h>

namespace profisched::workload {
namespace {

TEST(UUniFast, SumsToTarget) {
  sim::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<double> u = uunifast(8, 0.75, rng);
    ASSERT_EQ(u.size(), 8u);
    EXPECT_NEAR(std::accumulate(u.begin(), u.end(), 0.0), 0.75, 1e-12);
  }
}

TEST(UUniFast, AllSharesNonNegative) {
  sim::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    for (const double v : uunifast(5, 0.9, rng)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 0.9 + 1e-12);
    }
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  sim::Rng rng(3);
  const std::vector<double> u = uunifast(1, 0.42, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.42);
}

TEST(UUniFast, RejectsBadArguments) {
  sim::Rng rng(4);
  EXPECT_THROW((void)uunifast(0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW((void)uunifast(3, 0.0, rng), std::invalid_argument);
  EXPECT_THROW((void)uunifast(3, -1.0, rng), std::invalid_argument);
}

TEST(UUniFast, DeterministicPerSeed) {
  sim::Rng a(7), b(7);
  EXPECT_EQ(uunifast(6, 0.6, a), uunifast(6, 0.6, b));
}

TEST(UUniFast, MeanShareIsUOverN) {
  sim::Rng rng(8);
  double first_share_sum = 0;
  const int trials = 20'000;
  for (int t = 0; t < trials; ++t) first_share_sum += uunifast(4, 0.8, rng)[0];
  EXPECT_NEAR(first_share_sum / trials, 0.2, 0.01);  // unbiased: E[u_i] = U/n
}

}  // namespace
}  // namespace profisched::workload
