// Property tests for the asymmetric multi-master generation modes (PR 5):
// per-master UUniFast targets sum to total_u, explicit split weights are
// honoured proportionally, skewed splits produce exactly the requested
// imbalance, and every generated network — across hundreds of seeds per mode
// — passes validate(). The symmetric mode must keep its legacy semantics
// (every master independently loaded to total_u) bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>

#include "profibus/token_ring_analysis.hpp"
#include "workload/generators.hpp"

namespace profisched::workload {
namespace {

constexpr int kSeedsPerMode = 500;

NetworkParams base_params() {
  NetworkParams p;
  p.n_masters = 4;
  p.streams_per_master = 3;
  p.ttr = 3'000;
  p.total_u = 0.8;
  return p;
}

/// Achieved token-service utilization of master k: Σ_i T_cycle / T_i.
double achieved_master_u(const profibus::Network& net, std::size_t k) {
  const Ticks tcycle = profibus::t_cycle(net);
  double u = 0.0;
  for (const profibus::MessageStream& s : net.masters[k].high_streams) {
    u += static_cast<double>(tcycle) / static_cast<double>(s.T);
  }
  return u;
}

TEST(MasterSplit, SymmetricModeRepeatsTotalUExactly) {
  const NetworkParams p = base_params();
  const std::vector<double> targets = master_utilization_targets(p);
  ASSERT_EQ(targets.size(), p.n_masters);
  for (const double t : targets) EXPECT_EQ(t, p.total_u);  // bit-exact, not NEAR
}

TEST(MasterSplit, WeightedTargetsSumToTotalU) {
  NetworkParams p = base_params();
  p.master_split = {5.0, 3.0, 1.5, 0.5};
  const std::vector<double> targets = master_utilization_targets(p);
  ASSERT_EQ(targets.size(), 4u);
  double sum = 0.0;
  for (const double t : targets) {
    EXPECT_GT(t, 0.0);
    sum += t;
  }
  EXPECT_NEAR(sum, p.total_u, 1e-9);
}

TEST(MasterSplit, WeightedTargetsHonourProportions) {
  NetworkParams p = base_params();
  p.master_split = {0.4, 0.3, 0.2, 0.1};
  const std::vector<double> targets = master_utilization_targets(p);
  for (std::size_t k = 0; k + 1 < targets.size(); ++k) {
    EXPECT_NEAR(targets[k] / targets[k + 1],
                p.master_split[k] / p.master_split[k + 1], 1e-9);
  }
  // Unnormalized weights divide identically: only the proportions matter.
  NetworkParams scaled = p;
  scaled.master_split = {40.0, 30.0, 20.0, 10.0};
  const std::vector<double> scaled_targets = master_utilization_targets(scaled);
  for (std::size_t k = 0; k < targets.size(); ++k) {
    EXPECT_NEAR(targets[k], scaled_targets[k], 1e-12);
  }
}

TEST(MasterSplit, SkewedTargetsProduceRequestedImbalance) {
  NetworkParams p = base_params();
  p.master_skew = 0.75;
  const std::vector<double> targets = master_utilization_targets(p);
  ASSERT_EQ(targets.size(), 4u);
  double sum = 0.0;
  for (std::size_t k = 0; k < targets.size(); ++k) {
    sum += targets[k];
    // Consecutive masters differ by exactly (1 + skew); master 0 is hottest.
    if (k + 1 < targets.size()) {
      EXPECT_NEAR(targets[k] / targets[k + 1], 1.0 + p.master_skew, 1e-9);
    }
  }
  EXPECT_NEAR(sum, p.total_u, 1e-9);
}

TEST(MasterSplit, ZeroSkewEqualsUniformNetworkWideSplit) {
  NetworkParams skewed = base_params();
  skewed.master_skew = 1e-300;  // asymmetric mode engaged, imbalance ~ none
  NetworkParams weighted = base_params();
  weighted.master_split = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> a = master_utilization_targets(skewed);
  const std::vector<double> b = master_utilization_targets(weighted);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b[k], 1e-12);
    EXPECT_NEAR(b[k], base_params().total_u / 4.0, 1e-12);
  }
}

TEST(MasterSplit, InvalidCombinationsThrow) {
  NetworkParams p = base_params();
  p.master_split = {1.0, 1.0, 1.0};  // 3 weights, 4 masters
  EXPECT_THROW((void)master_utilization_targets(p), std::invalid_argument);

  p = base_params();
  p.master_split = {1.0, 1.0, 1.0, 0.0};  // non-positive weight
  EXPECT_THROW((void)master_utilization_targets(p), std::invalid_argument);

  p = base_params();
  p.master_split = {1.0, 1.0, 1.0, -2.0};
  EXPECT_THROW((void)master_utilization_targets(p), std::invalid_argument);

  p = base_params();
  p.master_skew = -0.5;
  EXPECT_THROW((void)master_utilization_targets(p), std::invalid_argument);

  p = base_params();
  p.master_split = {1.0, 1.0, 1.0, 1.0};
  p.master_skew = 0.5;  // mutually exclusive
  EXPECT_THROW((void)master_utilization_targets(p), std::invalid_argument);

  p = base_params();
  p.total_u = 0.0;  // split needs utilization-driven generation
  p.master_split = {1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW((void)master_utilization_targets(p), std::invalid_argument);
  sim::Rng rng(1);
  EXPECT_THROW((void)random_network(p, rng), std::invalid_argument);
}

TEST(MasterSplit, OverflowingSkewWeightsThrowInsteadOfGoingNaN) {
  // (1+skew)^(K-1) overflows double for reachable CLI inputs; without the
  // guard the inf/inf division turns every target into NaN and generation
  // proceeds on garbage.
  NetworkParams p = base_params();
  p.n_masters = 4'096;
  p.master_skew = 1.0;  // 2^4095 = inf
  EXPECT_THROW((void)master_utilization_targets(p), std::invalid_argument);

  p = base_params();
  p.master_skew = 1e300;  // overflows even at 4 masters
  EXPECT_THROW((void)master_utilization_targets(p), std::invalid_argument);

  // Large-but-finite stays fine.
  p = base_params();
  p.n_masters = 64;
  p.master_skew = 0.5;
  EXPECT_NO_THROW((void)master_utilization_targets(p));
}

/// Shared validity sweep: every generated network passes validate(), has the
/// requested shape, and lands near its per-master targets (T is rounded to
/// integer ticks, so "near" is a few percent, not 1e-9 — the 1e-9 contract
/// lives on the targets themselves, asserted above).
void run_validity_sweep(const NetworkParams& p) {
  const std::vector<double> targets = master_utilization_targets(p);
  double worst_rel = 0.0;
  for (int seed = 1; seed <= kSeedsPerMode; ++seed) {
    sim::Rng rng(static_cast<std::uint64_t>(seed));
    const GeneratedNetwork g = random_network(p, rng);
    ASSERT_NO_THROW(g.net.validate());
    ASSERT_EQ(g.net.n_masters(), p.n_masters);
    for (std::size_t k = 0; k < p.n_masters; ++k) {
      ASSERT_EQ(g.net.masters[k].nh(), p.streams_per_master);
      const double achieved = achieved_master_u(g.net, k);
      worst_rel = std::max(worst_rel, std::abs(achieved - targets[k]) / targets[k]);
    }
  }
  // Integer-period rounding and the T >= Ch clamp put a small bias on tiny
  // per-stream utilizations; 10% relative headroom holds comfortably across
  // every mode while still catching a mixed-up split.
  EXPECT_LT(worst_rel, 0.10);
}

TEST(MasterSplit, SymmetricNetworksValidAcross500Seeds) { run_validity_sweep(base_params()); }

TEST(MasterSplit, WeightedNetworksValidAcross500Seeds) {
  NetworkParams p = base_params();
  p.master_split = {0.45, 0.3, 0.15, 0.1};
  run_validity_sweep(p);
}

TEST(MasterSplit, SkewedNetworksValidAcross500Seeds) {
  NetworkParams p = base_params();
  p.master_skew = 0.6;
  run_validity_sweep(p);
}

TEST(MasterSplit, GenerationIsDeterministicPerSeed) {
  NetworkParams p = base_params();
  p.master_skew = 0.9;
  for (const std::uint64_t seed : {7ULL, 99ULL, 123456789ULL}) {
    sim::Rng a(seed), b(seed);
    const GeneratedNetwork ga = random_network(p, a);
    const GeneratedNetwork gb = random_network(p, b);
    ASSERT_EQ(ga.net.n_masters(), gb.net.n_masters());
    for (std::size_t k = 0; k < ga.net.n_masters(); ++k) {
      for (std::size_t i = 0; i < ga.net.masters[k].nh(); ++i) {
        EXPECT_EQ(ga.net.masters[k].high_streams[i].T, gb.net.masters[k].high_streams[i].T);
        EXPECT_EQ(ga.net.masters[k].high_streams[i].D, gb.net.masters[k].high_streams[i].D);
        EXPECT_EQ(ga.net.masters[k].high_streams[i].Ch, gb.net.masters[k].high_streams[i].Ch);
      }
    }
  }
}

/// The asymmetric modes must actually move load between masters: under a
/// strong skew, master 0's achieved utilization dominates the last master's.
TEST(MasterSplit, SkewMovesObservableLoad) {
  NetworkParams p = base_params();
  p.master_skew = 1.0;  // 2x per step -> 8x between first and last of 4
  double first = 0.0, last = 0.0;
  for (int seed = 1; seed <= 50; ++seed) {
    sim::Rng rng(static_cast<std::uint64_t>(seed));
    const GeneratedNetwork g = random_network(p, rng);
    first += achieved_master_u(g.net, 0);
    last += achieved_master_u(g.net, p.n_masters - 1);
  }
  EXPECT_GT(first, 4.0 * last);  // 8x in expectation; 4x leaves rounding room
}

}  // namespace
}  // namespace profisched::workload
