// Unit tests for the named DCCS scenarios — including the paper's concluding
// claim in miniature (tight_deadline_mix).
#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include "profibus/dispatching.hpp"
#include "profibus/ttr_setting.hpp"

namespace profisched::workload::scenarios {
namespace {

using profibus::analyze_network;
using profibus::ApPolicy;

TEST(FactoryCell, ValidThreeMasterRing) {
  const profibus::Network net = factory_cell();
  EXPECT_EQ(net.n_masters(), 3u);
  EXPECT_NO_THROW(net.validate());
  EXPECT_EQ(net.total_high_streams(), 9u);
}

TEST(FactoryCell, EveryMasterCarriesLowPriorityTraffic) {
  for (const auto& m : factory_cell().masters) EXPECT_GT(m.longest_low_cycle, 0);
}

TEST(FactoryCell, PriorityPoliciesScheduleIt) {
  const profibus::Network net = factory_cell();
  EXPECT_TRUE(analyze_network(net, ApPolicy::Dm).schedulable);
  EXPECT_TRUE(analyze_network(net, ApPolicy::Edf).schedulable);
}

TEST(FactoryCell, TtrIsTheEq15MaximumWhenFeasible) {
  const profibus::Network net = factory_cell();
  const auto best = profibus::max_schedulable_ttr(net);
  if (best.has_value()) {
    EXPECT_EQ(net.ttr, *best);
    EXPECT_TRUE(analyze_network(net, ApPolicy::Fcfs).schedulable);
  }
}

TEST(ProcessMonitoring, SingleMasterSteppedPeriods) {
  const profibus::Network net = process_monitoring(5, 20);
  EXPECT_EQ(net.n_masters(), 1u);
  EXPECT_EQ(net.masters[0].nh(), 5u);
  const auto& streams = net.masters[0].high_streams;
  for (std::size_t i = 1; i < streams.size(); ++i) EXPECT_GT(streams[i].T, streams[i - 1].T);
  for (const auto& s : streams) EXPECT_EQ(s.D, s.T);
}

TEST(ProcessMonitoring, SchedulableUnderFcfsByConstruction) {
  EXPECT_TRUE(analyze_network(process_monitoring(), ApPolicy::Fcfs).schedulable);
}

TEST(TightDeadlineMix, FcfsFailsPriorityQueuesSucceed) {
  // The paper's conclusion in one network: the tight-deadline stream misses
  // under FCFS dispatching but both priority-based AP queues schedule it.
  const profibus::Network net = tight_deadline_mix();
  EXPECT_FALSE(analyze_network(net, ApPolicy::Fcfs).schedulable);
  EXPECT_TRUE(analyze_network(net, ApPolicy::Dm).schedulable);
  EXPECT_TRUE(analyze_network(net, ApPolicy::Edf).schedulable);
}

TEST(TightDeadlineMix, OnlyTheTightStreamFailsUnderFcfs) {
  const profibus::Network net = tight_deadline_mix();
  const profibus::NetworkAnalysis fcfs = analyze_network(net, ApPolicy::Fcfs);
  EXPECT_FALSE(fcfs.masters[0].streams[0].meets_deadline);
  for (std::size_t i = 1; i < fcfs.masters[0].streams.size(); ++i) {
    EXPECT_TRUE(fcfs.masters[0].streams[i].meets_deadline) << i;
  }
}

TEST(TightDeadlineMix, DmImprovesTightStreamByTheExpectedFactor) {
  // FCFS: nh·T_cycle = 4·T_cycle; DM: 2·T_cycle → improvement factor 2.
  const profibus::Network net = tight_deadline_mix();
  const Ticks fcfs = analyze_network(net, ApPolicy::Fcfs).masters[0].streams[0].response;
  const Ticks dm = analyze_network(net, ApPolicy::Dm).masters[0].streams[0].response;
  EXPECT_EQ(fcfs, 2 * dm);
}

TEST(Scenarios, TicksPerMsConsistentWith500kbit) {
  EXPECT_EQ(kTicksPerMs, 500);
}

}  // namespace
}  // namespace profisched::workload::scenarios
