// Unit tests for the random task-set and network generators.
#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include "profibus/fcfs_analysis.hpp"
#include "profibus/ttr_setting.hpp"

namespace profisched::workload {
namespace {

TEST(LogUniform, StaysInRange) {
  sim::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const Ticks v = log_uniform(100, 10'000, rng);
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 10'000);
  }
}

TEST(LogUniform, DegenerateRange) {
  sim::Rng rng(2);
  EXPECT_EQ(log_uniform(500, 500, rng), 500);
}

TEST(RandomTaskSet, AlwaysValidAndOnSize) {
  sim::Rng rng(3);
  TaskSetParams p;
  p.n = 12;
  for (int trial = 0; trial < 200; ++trial) {
    const TaskSet ts = random_task_set(p, rng);
    EXPECT_EQ(ts.size(), 12u);
    EXPECT_NO_THROW(ts.validate());
  }
}

TEST(RandomTaskSet, UtilizationNearTarget) {
  sim::Rng rng(4);
  TaskSetParams p;
  p.n = 10;
  p.total_u = 0.7;
  p.t_min = 1'000;  // large periods keep rounding error small
  p.t_max = 100'000;
  double sum = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) sum += random_task_set(p, rng).utilization();
  EXPECT_NEAR(sum / trials, 0.7, 0.02);
}

TEST(RandomTaskSet, ConstrainedDeadlinesWhenRequested) {
  sim::Rng rng(5);
  TaskSetParams p;
  p.deadline_lo = 0.5;
  p.deadline_hi = 1.0;
  for (int t = 0; t < 100; ++t) {
    const TaskSet ts = random_task_set(p, rng);
    EXPECT_TRUE(ts.constrained_deadlines());
  }
}

TEST(RandomTaskSet, ImplicitDeadlinesByDefault) {
  sim::Rng rng(6);
  const TaskSet ts = random_task_set(TaskSetParams{}, rng);
  EXPECT_TRUE(ts.implicit_deadlines());
}

TEST(RandomTaskSet, JitterBoundedByRequestAndSlack) {
  sim::Rng rng(7);
  TaskSetParams p;
  p.jitter_max = 500;
  p.deadline_lo = 0.8;
  for (int t = 0; t < 100; ++t) {
    for (const auto& task : random_task_set(p, rng)) {
      EXPECT_LE(task.J, 500);
      EXPECT_LE(task.J, task.D - task.C);
    }
  }
}

TEST(RandomNetwork, ShapeAndValidity) {
  sim::Rng rng(8);
  NetworkParams p;
  p.n_masters = 4;
  p.streams_per_master = 3;
  const GeneratedNetwork g = random_network(p, rng);
  EXPECT_EQ(g.net.n_masters(), 4u);
  EXPECT_EQ(g.net.total_high_streams(), 12u);
  EXPECT_NO_THROW(g.net.validate());
  ASSERT_EQ(g.specs.size(), 4u);
  EXPECT_EQ(g.specs[0].size(), 3u);
}

TEST(RandomNetwork, ChMatchesSpecWorstCase) {
  sim::Rng rng(9);
  const GeneratedNetwork g = random_network(NetworkParams{}, rng);
  for (std::size_t k = 0; k < g.net.n_masters(); ++k) {
    for (std::size_t i = 0; i < g.net.masters[k].nh(); ++i) {
      EXPECT_EQ(g.net.masters[k].high_streams[i].Ch,
                profibus::worst_case_cycle_time(g.net.bus, g.specs[k][i]));
    }
  }
}

TEST(RandomNetwork, AutoTtrMakesFcfsSchedulableWhenPossible) {
  sim::Rng rng(10);
  int auto_schedulable = 0, total = 0;
  for (int t = 0; t < 50; ++t) {
    NetworkParams p;
    p.ttr = 0;  // auto
    const GeneratedNetwork g = random_network(p, rng);
    const auto best = profibus::max_schedulable_ttr(g.net);
    ++total;
    if (best.has_value()) {
      EXPECT_TRUE(profibus::analyze_fcfs(g.net).schedulable);
      ++auto_schedulable;
    }
  }
  EXPECT_GT(auto_schedulable, 0) << "generator never produced a schedulable set in " << total;
}

TEST(RandomNetwork, ExplicitTtrIsRespected) {
  sim::Rng rng(11);
  NetworkParams p;
  p.ttr = 123'456;
  EXPECT_EQ(random_network(p, rng).net.ttr, 123'456);
}

TEST(RandomNetwork, LowPriorityTrafficToggle) {
  sim::Rng rng(12);
  NetworkParams p;
  p.low_priority_traffic = false;
  const GeneratedNetwork g = random_network(p, rng);
  for (const auto& m : g.net.masters) EXPECT_EQ(m.longest_low_cycle, 0);
}

}  // namespace
}  // namespace profisched::workload
