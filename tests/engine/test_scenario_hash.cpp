// canonical_hash(Scenario) properties: stable under provenance changes (id,
// seed, grid coordinates, display names — none of which affect results),
// sensitive to every content field the analyses and simulator consume. The
// persistent result cache addresses entries by this digest, so an insensitive
// field here would serve stale results.
#include "engine/scenario.hpp"

#include <gtest/gtest.h>

#include "engine/sweep_runner.hpp"

namespace profisched::engine {
namespace {

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.base.n_masters = 2;
  spec.base.streams_per_master = 3;
  spec.base.ttr = 3'000;
  spec.points = {SweepPoint{0.5, 0.5, 1.0}};
  spec.scenarios_per_point = 4;
  spec.seed = 11;
  return spec;
}

Scenario generated(std::uint64_t id = 0) { return SweepRunner::make_scenario(tiny_spec(), id); }

TEST(ScenarioHash, DeterministicAcrossRegeneration) {
  EXPECT_EQ(canonical_hash(generated(2)), canonical_hash(generated(2)));
}

TEST(ScenarioHash, DistinctScenariosDigestDifferently) {
  EXPECT_NE(canonical_hash(generated(0)), canonical_hash(generated(1)));
}

TEST(ScenarioHash, ProvenanceAndNamesDoNotAffectTheDigest) {
  Scenario a = generated(3);
  Scenario b = generated(3);
  b.id = 999;
  b.seed = 123456789;
  b.total_u = 0.123;
  b.beta_lo = 0.9;
  b.beta_hi = 0.95;
  b.net.masters[0].name = "renamed";
  b.net.masters[0].high_streams[0].name = "also renamed";
  EXPECT_EQ(canonical_hash(a), canonical_hash(b));
}

TEST(ScenarioHash, EveryContentFieldPerturbsTheDigest) {
  const Scenario base = generated(1);
  const std::uint64_t h0 = canonical_hash(base);

  const auto perturbed = [&](auto&& mutate) {
    Scenario sc = generated(1);
    mutate(sc);
    return canonical_hash(sc);
  };
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.net.masters[0].high_streams[0].Ch += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.net.masters[0].high_streams[0].D += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.net.masters[0].high_streams[0].T += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.net.masters[1].high_streams[2].J += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.net.masters[0].longest_low_cycle += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.net.ttr += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.net.bus.t_sl += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.net.bus.max_retry += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.frame_specs[0][0].request_chars += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) { sc.frame_specs[1][1].response_chars += 1; }));
  EXPECT_NE(h0, perturbed([](Scenario& sc) {
              sc.transactions.push_back(profibus::Transaction{
                  {profibus::TransactionStage{0, 0, 10}}, 50'000, 50'000, ""});
            }));
}

TEST(ScenarioHash, StructureBoundariesCannotAlias) {
  // One master with two streams vs two masters with one stream each, same
  // scalar field values in the same order: the length prefixes must keep the
  // digests apart.
  Scenario one;
  one.net.ttr = 1'000;
  profibus::MessageStream s1{100, 5'000, 5'000, 0, ""};
  profibus::MessageStream s2{200, 9'000, 9'000, 0, ""};
  one.net.masters.push_back(profibus::Master{{s1, s2}, 0, ""});
  Scenario two;
  two.net.ttr = 1'000;
  two.net.masters.push_back(profibus::Master{{s1}, 0, ""});
  two.net.masters.push_back(profibus::Master{{s2}, 0, ""});
  EXPECT_NE(canonical_hash(one), canonical_hash(two));
}

}  // namespace
}  // namespace profisched::engine
