// Golden scenario-hash regression matrix (PR 5): canonical_hash values for a
// fixed (seed, params) grid of generated scenarios, committed as constants.
// The matrix spans every generation mode — the pre-multi-axis symmetric
// u-grid, the u × beta × masters cross product, explicit weighted splits and
// geometric skew — so ANY refactor of the workload generators, the scenario
// seeding, or the hash itself that perturbs generated workloads fails loudly
// here instead of silently shifting every published curve (and silently
// orphaning every persistent-cache entry).
//
// If this test fails, the workloads changed. That is only acceptable as a
// deliberate, documented decision; regenerate the constants from the new
// build and say so in the commit.
#include <gtest/gtest.h>

#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

namespace profisched::engine {
namespace {

struct GoldenHash {
  std::uint64_t id;
  std::uint64_t hash;
};

void expect_hashes(const SweepSpec& spec, const std::vector<GoldenHash>& golden,
                   const char* label) {
  ASSERT_EQ(golden.size(), spec.total_scenarios()) << label;
  for (const GoldenHash& g : golden) {
    const Scenario sc = SweepRunner::make_scenario(spec, g.id);
    EXPECT_EQ(canonical_hash(sc), g.hash)
        << label << " scenario id " << g.id
        << ": generated workload drifted from the committed golden";
  }
}

TEST(ScenarioGoldenHash, LegacySymmetricUGrid) {
  SweepSpec s;
  s.base.n_masters = 1;
  s.base.streams_per_master = 5;
  s.base.ttr = 3'000;
  s.points = {SweepPoint{0.3, 0.5, 1.0}, SweepPoint{0.7, 0.5, 1.0}};
  s.scenarios_per_point = 2;
  s.seed = 1;
  expect_hashes(s, {
      {0ULL, 0x0891f2eed6540cd6ULL},
      {1ULL, 0x0c2450e9cd5f26d1ULL},
      {2ULL, 0x4055e55d2a8d1e4cULL},
      {3ULL, 0x29b1d74f29a73f03ULL},
  }, "symmetric");
}

TEST(ScenarioGoldenHash, UBetaMastersCrossProduct) {
  SweepSpec s;
  s.base.n_masters = 1;
  s.base.streams_per_master = 4;
  s.base.ttr = 4'000;
  s.points = {SweepPoint{0.4, 0.6, 0.6, 1}, SweepPoint{0.4, 1.0, 1.0, 1},
              SweepPoint{0.4, 0.6, 0.6, 3}, SweepPoint{0.4, 1.0, 1.0, 3}};
  s.scenarios_per_point = 1;
  s.seed = 42;
  expect_hashes(s, {
      {0ULL, 0x5ae1855d2758afc3ULL},
      {1ULL, 0x859ae6f7ac4f42fcULL},
      {2ULL, 0xcc327ec7be331b4eULL},
      {3ULL, 0xbf83cd7be0fba3adULL},
  }, "u x beta x masters");
}

TEST(ScenarioGoldenHash, WeightedSplit) {
  SweepSpec s;
  s.base.n_masters = 3;
  s.base.streams_per_master = 3;
  s.base.ttr = 5'000;
  s.base.master_split = {0.5, 0.3, 0.2};
  s.points = {SweepPoint{0.8, 0.5, 1.0}};
  s.scenarios_per_point = 2;
  s.seed = 7;
  expect_hashes(s, {
      {0ULL, 0xf1a801e6dd02e104ULL},
      {1ULL, 0xaad248965e62d1b1ULL},
  }, "weighted split");
}

TEST(ScenarioGoldenHash, GeometricSkew) {
  SweepSpec s;
  s.base.n_masters = 4;
  s.base.streams_per_master = 3;
  s.base.ttr = 5'000;
  s.base.master_skew = 0.75;
  s.points = {SweepPoint{0.9, 0.5, 1.0}};
  s.scenarios_per_point = 2;
  s.seed = 9;
  expect_hashes(s, {
      {0ULL, 0x0a6a8fa94c89e6ceULL},
      {1ULL, 0x50c6ea04550c64c5ULL},
  }, "geometric skew");
}

/// The hash must separate the modes: equal (seed, u) under different splits
/// must digest differently — otherwise the content-addressed cache would
/// serve a symmetric scenario's result for a skewed one.
TEST(ScenarioGoldenHash, ModesDigestDifferently) {
  SweepSpec sym;
  sym.base.n_masters = 4;
  sym.base.streams_per_master = 3;
  sym.base.ttr = 5'000;
  sym.points = {SweepPoint{0.9, 0.5, 1.0}};
  sym.scenarios_per_point = 2;
  sym.seed = 9;

  SweepSpec skew = sym;
  skew.base.master_skew = 0.75;
  SweepSpec split = sym;
  split.base.master_split = {0.4, 0.3, 0.2, 0.1};

  const std::uint64_t h_sym = canonical_hash(SweepRunner::make_scenario(sym, 0));
  const std::uint64_t h_skew = canonical_hash(SweepRunner::make_scenario(skew, 0));
  const std::uint64_t h_split = canonical_hash(SweepRunner::make_scenario(split, 0));
  EXPECT_NE(h_sym, h_skew);
  EXPECT_NE(h_sym, h_split);
  EXPECT_NE(h_skew, h_split);
}

}  // namespace
}  // namespace profisched::engine
