// Unit tests for the engine's fixed-size worker pool.
#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace profisched::engine {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeIsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i, unsigned) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForWorkerSlotsAreDense) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> slot_used(4);
  pool.parallel_for(200, [&](std::size_t, unsigned worker) {
    ASSERT_LT(worker, 4u);
    slot_used[worker].fetch_add(1);
  });
  int total = 0;
  for (auto& s : slot_used) total += s.load();
  EXPECT_EQ(total, 200);
}

TEST(ThreadPool, ParallelForHandlesZeroAndFewerItemsThanWorkers) {
  ThreadPool pool(8);
  pool.parallel_for(0, [&](std::size_t, unsigned) { FAIL() << "no items to run"; });
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&](std::size_t, unsigned worker) {
    EXPECT_LT(worker, 3u);  // slots never exceed the item count
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.stopped());
  pool.stop();
  EXPECT_TRUE(pool.stopped());
  EXPECT_THROW(pool.submit([] {}), std::logic_error);
  // stop() is idempotent and the contract holds on repeat.
  pool.stop();
  EXPECT_THROW(pool.submit([] {}), std::logic_error);
}

TEST(ThreadPool, JobsQueuedBeforeStopStillRun) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    // One slow job pins the single worker so the rest provably sit queued
    // when stop() lands.
    pool.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.stop();
  }  // destructor joins after the queue drains
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ShutdownRaceNeverDropsWorkSilently) {
  // Hammer submit from several threads while stop() lands mid-stream: every
  // submission must either run to completion or throw — a silent drop shows
  // up as accepted > executed.
  ThreadPool pool(4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        try {
          pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::logic_error&) {
          return;  // pool stopped underneath us — the loud path
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool.stop();
  for (std::thread& t : submitters) t.join();
  EXPECT_THROW(pool.submit([] {}), std::logic_error);
  // Accepted jobs were queued before stop_, so the drain-then-retire shutdown
  // runs them all.
  pool.wait_idle();
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(50, [&](std::size_t, unsigned) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 50);
  }
}

}  // namespace
}  // namespace profisched::engine
