// Unit tests for the engine's fixed-size worker pool.
#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace profisched::engine {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeIsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i, unsigned) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForWorkerSlotsAreDense) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> slot_used(4);
  pool.parallel_for(200, [&](std::size_t, unsigned worker) {
    ASSERT_LT(worker, 4u);
    slot_used[worker].fetch_add(1);
  });
  int total = 0;
  for (auto& s : slot_used) total += s.load();
  EXPECT_EQ(total, 200);
}

TEST(ThreadPool, ParallelForHandlesZeroAndFewerItemsThanWorkers) {
  ThreadPool pool(8);
  pool.parallel_for(0, [&](std::size_t, unsigned) { FAIL() << "no items to run"; });
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&](std::size_t, unsigned worker) {
    EXPECT_LT(worker, 3u);  // slots never exceed the item count
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(50, [&](std::size_t, unsigned) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 50);
  }
}

}  // namespace
}  // namespace profisched::engine
