// Argument validation of the `profisched simulate` sweep mode — exactly what
// the CLI feeds to parse_sim_sweep_args, exercised as a library call.
#include "engine/sim_cli.hpp"

#include <gtest/gtest.h>

namespace profisched::engine {
namespace {

SimSweepCli parse_ok(const std::vector<std::string>& args) {
  SimSweepCli cli;
  std::string error;
  EXPECT_TRUE(parse_sim_sweep_args(args, cli, error)) << error;
  EXPECT_TRUE(error.empty());
  return cli;
}

std::string parse_fail(const std::vector<std::string>& args) {
  SimSweepCli cli;
  std::string error;
  EXPECT_FALSE(parse_sim_sweep_args(args, cli, error));
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(SimCli, DefaultsMatchTheSweepSubcommand) {
  const SimSweepCli cli = parse_ok({});
  EXPECT_EQ(cli.spec.sweep.base.n_masters, 1u);
  EXPECT_EQ(cli.spec.sweep.base.streams_per_master, 5u);
  EXPECT_EQ(cli.spec.sweep.base.ttr, 3'000);
  EXPECT_EQ(cli.spec.sweep.scenarios_per_point, 100u);
  EXPECT_EQ(cli.spec.sweep.points.size(), 9u);  // 0.1:0.9:9 default grid
  EXPECT_EQ(cli.spec.sweep.policies.size(), 3u);
  EXPECT_EQ(cli.spec.replications, 1u);
  EXPECT_EQ(cli.threads, 0u);
  EXPECT_FALSE(cli.combined);
  EXPECT_FALSE(cli.spec.sim.lp_traffic);
  EXPECT_EQ(cli.spec.sim.cycle_model.kind, sim::CycleModel::Kind::WorstCase);
}

TEST(SimCli, ParsesTheFullFlagSurface) {
  const SimSweepCli cli = parse_ok({"--scenarios", "25", "--reps", "3", "--masters", "2",
                                    "--streams", "4", "--u", "0.2:0.8:4", "--beta-lo", "0.4",
                                    "--beta-hi", "0.9", "--policies", "dm,edf", "--threads",
                                    "8", "--seed", "77", "--ttr", "5000", "--horizon",
                                    "100000", "--model", "uniform", "--lp", "--combined",
                                    "--csv", "out.csv", "--json", "out.json"});
  EXPECT_EQ(cli.spec.sweep.scenarios_per_point, 25u);
  EXPECT_EQ(cli.spec.replications, 3u);
  EXPECT_EQ(cli.spec.sweep.base.n_masters, 2u);
  EXPECT_EQ(cli.spec.sweep.base.streams_per_master, 4u);
  ASSERT_EQ(cli.spec.sweep.points.size(), 4u);
  EXPECT_DOUBLE_EQ(cli.spec.sweep.points.front().total_u, 0.2);
  EXPECT_DOUBLE_EQ(cli.spec.sweep.points.back().total_u, 0.8);
  EXPECT_DOUBLE_EQ(cli.spec.sweep.points[0].beta_lo, 0.4);
  EXPECT_DOUBLE_EQ(cli.spec.sweep.points[0].beta_hi, 0.9);
  ASSERT_EQ(cli.spec.sweep.policies.size(), 2u);
  EXPECT_EQ(cli.spec.sweep.policies[0], Policy::Dm);
  EXPECT_EQ(cli.spec.sweep.policies[1], Policy::Edf);
  EXPECT_EQ(cli.threads, 8u);
  EXPECT_EQ(cli.spec.sweep.seed, 77u);
  EXPECT_EQ(cli.spec.sweep.base.ttr, 5'000);
  EXPECT_EQ(cli.spec.sim.horizon, 100'000);
  EXPECT_EQ(cli.spec.sim.cycle_model.kind, sim::CycleModel::Kind::UniformFraction);
  EXPECT_TRUE(cli.spec.sim.lp_traffic);
  EXPECT_TRUE(cli.combined);
  EXPECT_EQ(cli.csv_path, "out.csv");
  EXPECT_EQ(cli.json_path, "out.json");
}

TEST(SimCli, SingleStepGridUsesLo) {
  const SimSweepCli cli = parse_ok({"--u", "0.5:0.9:1"});
  ASSERT_EQ(cli.spec.sweep.points.size(), 1u);
  EXPECT_DOUBLE_EQ(cli.spec.sweep.points[0].total_u, 0.5);
}

TEST(SimCli, RejectsMalformedNumbers) {
  (void)parse_fail({"--scenarios", "0"});
  (void)parse_fail({"--scenarios", "-5"});
  (void)parse_fail({"--scenarios", "12abc"});
  (void)parse_fail({"--scenarios"});  // missing value
  (void)parse_fail({"--reps", "0"});
  (void)parse_fail({"--masters", "99999999"});  // above the 4096 cap
  (void)parse_fail({"--threads", "4096"});      // above the 1024 cap
  (void)parse_fail({"--horizon", "0"});
  (void)parse_fail({"--cycles", "0"});
  (void)parse_fail({"--cycles", "-1"});
}

TEST(SimCli, RejectsBadGridsAndPolicies) {
  (void)parse_fail({"--u", "0.9:0.1:5"});    // HI < LO
  (void)parse_fail({"--u", "0:0.9:5"});      // LO must be > 0 (UUniFast mode)
  (void)parse_fail({"--u", "0.1:0.9"});      // missing STEPS
  (void)parse_fail({"--u", "0.1:0.9:0"});
  (void)parse_fail({"--policies", "fcfs,opa"});   // analysis-only policy
  (void)parse_fail({"--policies", "fcfs,fcfs"});  // duplicate column
  (void)parse_fail({"--policies", "banana"});
  (void)parse_fail({"--model", "exact"});
  (void)parse_fail({"--frobnicate"});  // unknown flag
}

TEST(SimCli, RejectsOversizedSweeps) {
  const std::string err =
      parse_fail({"--scenarios", "100000000", "--u", "0.1:0.9:1000"});
  EXPECT_NE(err.find("too large"), std::string::npos);
}

TEST(SimCli, ErrorsNameTheOffendingFlag) {
  EXPECT_NE(parse_fail({"--reps", "x"}).find("--reps"), std::string::npos);
  EXPECT_NE(parse_fail({"--u", "bad"}).find("--u"), std::string::npos);
  EXPECT_NE(parse_fail({"--unknown-flag"}).find("--unknown-flag"), std::string::npos);
}

TEST(SimCli, QuantileSelectsTheReportedPercentile) {
  EXPECT_DOUBLE_EQ(parse_ok({}).spec.sim.quantile, 0.99);  // default keeps p99
  EXPECT_DOUBLE_EQ(parse_ok({"--quantile", "0.5"}).spec.sim.quantile, 0.5);
  EXPECT_DOUBLE_EQ(parse_ok({"--quantile", "1"}).spec.sim.quantile, 1.0);
  (void)parse_fail({"--quantile", "0"});    // degenerate percentile
  (void)parse_fail({"--quantile", "1.5"});  // above 1
  (void)parse_fail({"--quantile", "-0.9"});
  (void)parse_fail({"--quantile", "x"});
  (void)parse_fail({"--quantile", "nan"});  // strtod accepts it; the range check must not
  (void)parse_fail({"--beta-lo", "nan"});
  (void)parse_fail({"--quantile"});
}

TEST(SimCli, CacheFlagCarriesTheDirectory) {
  EXPECT_TRUE(parse_ok({}).cache_dir.empty());
  EXPECT_EQ(parse_ok({"--cache", "results/.cache"}).cache_dir, "results/.cache");
  (void)parse_fail({"--cache"});
}

TEST(SimCli, OutputDestinationsAreValidatedUpFront) {
  // A doomed destination must fail at parse time (before the sweep runs),
  // with the offending flag named in the diagnostic.
  EXPECT_NE(parse_fail({"--csv", "/nonexistent_profisched/out.csv"}).find("--csv"),
            std::string::npos);
  EXPECT_NE(parse_fail({"--json", "/nonexistent_profisched/out.json"}).find("--json"),
            std::string::npos);
  EXPECT_NE(parse_fail({"--metrics", "/nonexistent_profisched/m.json"}).find("--metrics"),
            std::string::npos);
  EXPECT_NE(parse_fail({"--cache", "/dev/null/cache"}).find("--cache"), std::string::npos);
  EXPECT_NE(parse_fail({"--csv", "/tmp"}).find("is a directory"), std::string::npos);
}

TEST(SimCli, FaultsFlagFillsEveryKnob) {
  const SimSweepCli cli = parse_ok(
      {"--faults",
       "loss=0.02,recovery=800,corrupt=0.05,retrans=2,churn=0.01,offline=5000,burst=0.7"});
  const profibus::FaultModel& f = cli.spec.sim.faults;
  EXPECT_DOUBLE_EQ(f.token_loss_prob, 0.02);
  EXPECT_EQ(f.token_recovery, 800);
  EXPECT_DOUBLE_EQ(f.corruption_prob, 0.05);
  EXPECT_EQ(f.max_retransmissions, 2u);
  EXPECT_DOUBLE_EQ(f.churn_prob, 0.01);
  EXPECT_EQ(f.churn_offline, 5'000);
  EXPECT_DOUBLE_EQ(f.burst_correlation, 0.7);
  EXPECT_TRUE(f.any());
  // Subsets leave the other knobs at their zero defaults.
  const SimSweepCli loss_only = parse_ok({"--faults", "loss=0.1"});
  EXPECT_DOUBLE_EQ(loss_only.spec.sim.faults.token_loss_prob, 0.1);
  EXPECT_DOUBLE_EQ(loss_only.spec.sim.faults.corruption_prob, 0.0);
  // All-zero knobs parse fine and leave the spec fault-free — the
  // byte-identity escape hatch.
  EXPECT_FALSE(parse_ok({"--faults", "loss=0,corrupt=0"}).spec.sim.faults.any());
  // Default: no faults at all.
  EXPECT_FALSE(parse_ok({}).spec.sim.faults.any());
}

TEST(SimCli, FaultsFlagRejectsBadInput) {
  (void)parse_fail({"--faults"});                       // missing value
  (void)parse_fail({"--faults", ""});                   // empty value
  (void)parse_fail({"--faults", "loss"});               // no '='
  (void)parse_fail({"--faults", "banana=1"});           // unknown key
  (void)parse_fail({"--faults", "loss=abc"});           // not a number
  (void)parse_fail({"--faults", "loss=-0.1"});          // negative probability
  (void)parse_fail({"--faults", "loss=1.5"});           // validate(): prob > 1
  (void)parse_fail({"--faults", "loss=nan"});
  (void)parse_fail({"--faults", "recovery=-5"});
  (void)parse_fail({"--faults", "retrans=5000"});       // above the cap
  (void)parse_fail({"--faults", "loss=0.1,"});          // trailing empty entry
  (void)parse_fail({"--faults", "loss=0.1,loss"});      // malformed second entry
  // validate() failures and parse failures both name the flag.
  EXPECT_NE(parse_fail({"--faults", "burst=2"}).find("--faults"), std::string::npos);
  EXPECT_NE(parse_fail({"--faults", "frob=1"}).find("--faults"), std::string::npos);
}

TEST(SimCli, SimulableOnlyFalseAdmitsTheAnalysisPolicyTable) {
  SimSweepCli cli;
  std::string error;
  ASSERT_TRUE(parse_sim_sweep_args({"--policies", "fcfs,opa,token,holistic"}, cli, error,
                                   /*simulable_only=*/false))
      << error;
  ASSERT_EQ(cli.spec.sweep.policies.size(), 4u);
  EXPECT_EQ(cli.spec.sweep.policies[1], Policy::Opa);
  EXPECT_EQ(cli.spec.sweep.policies[2], Policy::TokenRing);
  // Duplicates stay rejected whichever table is active.
  EXPECT_FALSE(parse_sim_sweep_args({"--policies", "opa,opa"}, cli, error, false));
}

}  // namespace
}  // namespace profisched::engine
