// The sweep runner's acceptance properties: results are bit-identical for
// every thread count, scenario generation is reproducible from (seed, id)
// alone, and the UUniFast mode hits its utilization target.
#include "engine/sweep_runner.hpp"

#include <gtest/gtest.h>

#include "engine/aggregate.hpp"
#include "profibus/token_ring_analysis.hpp"

namespace profisched::engine {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.base.n_masters = 1;
  spec.base.streams_per_master = 5;
  spec.base.ttr = 3'000;
  spec.points = {SweepPoint{0.3, 0.5, 1.0}, SweepPoint{0.6, 0.5, 1.0},
                 SweepPoint{0.9, 0.5, 1.0}};
  spec.scenarios_per_point = 40;
  spec.policies = {Policy::Fcfs, Policy::Dm, Policy::Edf};
  spec.seed = 2026;
  return spec;
}

void expect_same_outcomes(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].seed, b.outcomes[i].seed);
    EXPECT_EQ(a.outcomes[i].point, b.outcomes[i].point);
    EXPECT_EQ(a.outcomes[i].tcycle, b.outcomes[i].tcycle);
    EXPECT_EQ(a.outcomes[i].schedulable, b.outcomes[i].schedulable);
    EXPECT_EQ(a.outcomes[i].worst_slack, b.outcomes[i].worst_slack);
  }
}

TEST(SweepRunner, ResultsAreInvariantUnderThreadCount) {
  const SweepSpec spec = small_spec();
  SweepRunner one(1);
  SweepRunner four(4);
  SweepRunner seven(7);
  const SweepResult r1 = one.run(spec);
  const SweepResult r4 = four.run(spec);
  const SweepResult r7 = seven.run(spec);
  expect_same_outcomes(r1, r4);
  expect_same_outcomes(r1, r7);
  // And the serialized aggregates are byte-identical.
  const std::string csv = aggregate(spec, r1).to_csv();
  EXPECT_EQ(csv, aggregate(spec, r4).to_csv());
  EXPECT_EQ(csv, aggregate(spec, r7).to_csv());
  EXPECT_EQ(aggregate(spec, r1).to_json(), aggregate(spec, r4).to_json());
}

TEST(SweepRunner, RepeatedRunsAreIdentical) {
  const SweepSpec spec = small_spec();
  SweepRunner runner(2);
  expect_same_outcomes(runner.run(spec), runner.run(spec));
}

TEST(SweepRunner, ScenarioSeedDependsOnlyOnSweepSeedAndId) {
  EXPECT_EQ(SweepRunner::scenario_seed(1, 5), SweepRunner::scenario_seed(1, 5));
  EXPECT_NE(SweepRunner::scenario_seed(1, 5), SweepRunner::scenario_seed(1, 6));
  EXPECT_NE(SweepRunner::scenario_seed(1, 5), SweepRunner::scenario_seed(2, 5));
}

TEST(SweepRunner, MakeScenarioIsReproducibleAndMapsPoints) {
  const SweepSpec spec = small_spec();
  const Scenario a = SweepRunner::make_scenario(spec, 85);
  const Scenario b = SweepRunner::make_scenario(spec, 85);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.net.n_masters(), b.net.n_masters());
  for (std::size_t i = 0; i < a.net.masters[0].nh(); ++i) {
    EXPECT_EQ(a.net.masters[0].high_streams[i].Ch, b.net.masters[0].high_streams[i].Ch);
    EXPECT_EQ(a.net.masters[0].high_streams[i].T, b.net.masters[0].high_streams[i].T);
    EXPECT_EQ(a.net.masters[0].high_streams[i].D, b.net.masters[0].high_streams[i].D);
  }
  // id 85 with 40 scenarios/point lies in point 2 (u = 0.9).
  EXPECT_EQ(a.total_u, 0.9);
  EXPECT_EQ(a.beta_lo, 0.5);
  EXPECT_THROW((void)SweepRunner::make_scenario(spec, spec.total_scenarios()),
               std::out_of_range);
}

TEST(SweepRunner, UunifastScenariosHitTheUtilizationTarget) {
  const SweepSpec spec = small_spec();
  for (const std::uint64_t id : {0ULL, 45ULL, 110ULL}) {
    const Scenario sc = SweepRunner::make_scenario(spec, id);
    const Ticks tcycle = profibus::t_cycle(sc.net);
    double u = 0.0;
    for (const auto& s : sc.net.masters[0].high_streams) {
      u += static_cast<double>(tcycle) / static_cast<double>(s.T);
    }
    // Integer period rounding wiggles the sum a little; ±5 % is plenty.
    EXPECT_NEAR(u, sc.total_u, 0.05 * sc.total_u + 0.01) << "scenario " << id;
  }
}

TEST(SweepRunner, MemoizationIsUsedOncePerScenario) {
  const SweepSpec spec = small_spec();
  SweepRunner runner(1);
  const SweepResult r = runner.run(spec);
  EXPECT_EQ(r.memo_misses, spec.total_scenarios());
  // Every policy after the first per scenario hits the memo.
  EXPECT_EQ(r.memo_hits, spec.total_scenarios() * (spec.policies.size() - 1));
}

TEST(SweepRunner, WorkerExceptionsSurfaceOnTheCallingThread) {
  // UUniFast mode without an explicit T_TR is rejected by the generator —
  // inside a worker thread. The error must reach run()'s caller, not
  // std::terminate the process.
  SweepSpec spec = small_spec();
  spec.base.ttr = 0;
  SweepRunner runner(3);
  EXPECT_THROW((void)runner.run(spec), std::invalid_argument);
}

TEST(SweepRunner, RejectsEmptySpecs) {
  SweepRunner runner(1);
  SweepSpec spec = small_spec();
  spec.policies.clear();
  EXPECT_THROW((void)runner.run(spec), std::invalid_argument);
  SweepSpec no_points = small_spec();
  no_points.points.clear();
  EXPECT_THROW((void)SweepRunner::make_scenario(no_points, 0), std::invalid_argument);
  EXPECT_THROW((void)runner.run(no_points), std::invalid_argument);
  SweepSpec no_reps = small_spec();
  no_reps.scenarios_per_point = 0;
  EXPECT_THROW((void)runner.run(no_reps), std::invalid_argument);
}

}  // namespace
}  // namespace profisched::engine
