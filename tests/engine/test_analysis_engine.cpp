// Unit tests for the unified AnalysisEngine front end: memoized results must
// equal the direct analyze_* entry points bit for bit, and the policy wraps
// must agree with the underlying analyses' verdicts.
#include "engine/analysis_engine.hpp"

#include <gtest/gtest.h>

#include "profibus/edf_analysis.hpp"
#include "workload/generators.hpp"
#include "workload/scenarios.hpp"

namespace profisched::engine {
namespace {

using profibus::ApPolicy;
using profibus::NetworkAnalysis;

Scenario scenario_from(profibus::Network net, std::uint64_t id) {
  Scenario sc;
  sc.id = id;
  sc.net = std::move(net);
  return sc;
}

void expect_same_analysis(const NetworkAnalysis& a, const NetworkAnalysis& b) {
  EXPECT_EQ(a.schedulable, b.schedulable);
  EXPECT_EQ(a.tcycle, b.tcycle);
  ASSERT_EQ(a.masters.size(), b.masters.size());
  for (std::size_t k = 0; k < a.masters.size(); ++k) {
    ASSERT_EQ(a.masters[k].streams.size(), b.masters[k].streams.size());
    EXPECT_EQ(a.masters[k].schedulable, b.masters[k].schedulable);
    for (std::size_t i = 0; i < a.masters[k].streams.size(); ++i) {
      EXPECT_EQ(a.masters[k].streams[i].response, b.masters[k].streams[i].response);
      EXPECT_EQ(a.masters[k].streams[i].Q, b.masters[k].streams[i].Q);
      EXPECT_EQ(a.masters[k].streams[i].meets_deadline, b.masters[k].streams[i].meets_deadline);
    }
  }
}

TEST(AnalysisEngine, MemoizedResultsEqualDirectAnalyses) {
  sim::Rng rng(42);
  AnalysisEngine engine;
  for (std::uint64_t s = 0; s < 50; ++s) {
    workload::NetworkParams p;
    p.n_masters = 1 + static_cast<std::size_t>(s % 3);
    p.streams_per_master = 3 + static_cast<std::size_t>(s % 4);
    p.deadline_lo = 0.4;
    p.ttr = 3'000;
    const Scenario sc = scenario_from(workload::random_network(p, rng).net, s);

    expect_same_analysis(engine.analyze(sc, Policy::Fcfs).detail,
                         analyze_fcfs(sc.net));
    expect_same_analysis(engine.analyze(sc, Policy::Dm).detail,
                         analyze_dm(sc.net));
    expect_same_analysis(engine.analyze(sc, Policy::Edf).detail,
                         analyze_edf(sc.net));
  }
}

TEST(AnalysisEngine, TimingMemoIsReusedAcrossPolicies) {
  AnalysisEngine engine;
  const Scenario sc = scenario_from(workload::scenarios::factory_cell(), 7);
  (void)engine.analyze(sc, Policy::Fcfs);
  EXPECT_EQ(engine.memo_misses(), 1u);
  (void)engine.analyze(sc, Policy::Dm);
  (void)engine.analyze(sc, Policy::Edf);
  (void)engine.analyze(sc, Policy::Edf);
  EXPECT_EQ(engine.memo_misses(), 1u);  // one derivation only
  EXPECT_EQ(engine.memo_hits(), 3u);
  EXPECT_EQ(engine.memo_size(), 1u);
  engine.forget(sc.id);
  EXPECT_EQ(engine.memo_size(), 0u);
}

TEST(AnalysisEngine, MemoGuardsAgainstIdReuseWithDifferentNetwork) {
  AnalysisEngine engine;
  const Scenario a = scenario_from(workload::scenarios::factory_cell(), 1);
  const Scenario b = scenario_from(workload::scenarios::tight_deadline_mix(), 1);  // same id!
  const Report ra = engine.analyze(a, Policy::Fcfs);
  const Report rb = engine.analyze(b, Policy::Fcfs);
  // b must not be served a's timing: its FCFS verdict is NOT schedulable.
  EXPECT_TRUE(ra.schedulable);
  EXPECT_FALSE(rb.schedulable);
  EXPECT_EQ(rb.detail.tcycle, profibus::t_cycle(b.net));
}

TEST(AnalysisEngine, ReportSummariesMatchDetail) {
  AnalysisEngine engine;
  const Scenario sc = scenario_from(workload::scenarios::tight_deadline_mix(), 3);
  const Report r = engine.analyze(sc, Policy::Fcfs);
  EXPECT_EQ(r.n_streams, 4u);
  EXPECT_EQ(r.streams_meeting, 3u);  // the urgent stream misses under FCFS
  // worst slack = D(urgent) − R(urgent) < 0.
  const Ticks d = sc.net.masters[0].high_streams[0].D;
  const Ticks resp = r.detail.masters[0].streams[0].response;
  EXPECT_EQ(r.worst_slack, d - resp);
  EXPECT_LT(r.worst_slack, 0);
}

TEST(AnalysisEngine, OpaPolicyMatchesAudsley) {
  sim::Rng rng(99);
  AnalysisEngine engine;
  for (std::uint64_t s = 0; s < 30; ++s) {
    workload::NetworkParams p;
    p.n_masters = 1;
    p.streams_per_master = 4;
    p.deadline_lo = 0.3;
    p.t_min = 8'000;
    p.t_max = 60'000;
    p.ttr = 3'000;
    const Scenario sc = scenario_from(workload::random_network(p, rng).net, 100 + s);
    const Report r = engine.analyze(sc, Policy::Opa);
    EXPECT_EQ(r.schedulable, audsley_stream_orders(sc.net).has_value());
  }
}

TEST(AnalysisEngine, TokenRingIsNecessaryForFcfs) {
  sim::Rng rng(7);
  AnalysisEngine engine;
  for (std::uint64_t s = 0; s < 40; ++s) {
    workload::NetworkParams p;
    p.n_masters = 2;
    p.streams_per_master = 3;
    p.deadline_lo = 0.5;
    p.ttr = 2'000;
    const Scenario sc = scenario_from(workload::random_network(p, rng).net, 200 + s);
    const bool token_ok = engine.analyze(sc, Policy::TokenRing).schedulable;
    const bool fcfs_ok = engine.analyze(sc, Policy::Fcfs).schedulable;
    // D >= T_cycle is necessary under any AP policy.
    if (fcfs_ok) EXPECT_TRUE(token_ok);
  }
}

TEST(AnalysisEngine, InvalidNetworksAreRejectedUnderEveryPolicy) {
  AnalysisEngine engine;
  Scenario sc;
  sc.id = 99;
  profibus::Master m;
  m.high_streams.push_back(profibus::MessageStream{});  // Ch = D = T = 0: invalid
  sc.net.masters = {m};
  sc.net.ttr = 0;
  for (const Policy p : {Policy::Fcfs, Policy::Dm, Policy::Edf, Policy::Opa,
                         Policy::TokenRing, Policy::Holistic}) {
    EXPECT_THROW((void)engine.analyze(sc, p), std::invalid_argument)
        << "policy " << to_string(p);
  }
}

TEST(AnalysisEngine, HolisticWrapAcceptsHealthyBaseline) {
  AnalysisEngine engine;
  const Scenario sc = scenario_from(workload::scenarios::factory_cell(), 11);
  const Report r = engine.analyze(sc, Policy::Holistic);
  // factory_cell is schedulable under DM; the derived single-stage
  // transactions (one per stream) must converge and fit too.
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.n_streams, 9u);
}

}  // namespace
}  // namespace profisched::engine
