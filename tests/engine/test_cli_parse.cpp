// Unit tests for the shared multi-axis grid expansion (engine/detail/
// cli_parse.hpp): cross-product shape and ordering, legacy equivalence for
// u-only grids, and — the PR-5 hardening — loud, specific rejection of
// inverted/degenerate grid specs that previously slipped through as silent
// misbehaviour.
#include "engine/detail/cli_parse.hpp"

#include <gtest/gtest.h>

namespace profisched::engine {
namespace {

struct Expansion {
  workload::NetworkParams base;
  std::vector<SweepPoint> points;
  std::string error;
  bool ok = false;
};

Expansion expand(const GridCliArgs& args, std::size_t base_masters = 1) {
  Expansion e;
  e.base.n_masters = base_masters;
  e.ok = expand_cli_grid(args, e.base, e.points, e.error);
  return e;
}

std::string expand_error(const GridCliArgs& args, std::size_t base_masters = 1) {
  const Expansion e = expand(args, base_masters);
  EXPECT_FALSE(e.ok);
  EXPECT_FALSE(e.error.empty());
  return e.error;
}

TEST(CliGrid, DefaultGridMatchesLegacySweep) {
  const Expansion e = expand({});
  ASSERT_TRUE(e.ok) << e.error;
  ASSERT_EQ(e.points.size(), 9u);  // 0.1:0.9:9
  EXPECT_DOUBLE_EQ(e.points.front().total_u, 0.1);
  EXPECT_DOUBLE_EQ(e.points.back().total_u, 0.9);
  for (const SweepPoint& pt : e.points) {
    EXPECT_DOUBLE_EQ(pt.beta_lo, 0.5);
    EXPECT_DOUBLE_EQ(pt.beta_hi, 1.0);
    EXPECT_EQ(pt.n_masters, 0u);  // no masters axis -> legacy sentinel
  }
  EXPECT_FALSE(has_multi_axis(e.points));
}

TEST(CliGrid, CrossProductOrderIsMastersBetaU) {
  GridCliArgs args;
  args.u = "0.2:0.4:2";
  args.beta = "0.6:1.0:2";
  args.masters = "1,3";
  const Expansion e = expand(args);
  ASSERT_TRUE(e.ok) << e.error;
  ASSERT_EQ(e.points.size(), 8u);  // 2 masters x 2 beta x 2 u
  // u innermost, beta next, masters outermost.
  const auto& p = e.points;
  EXPECT_DOUBLE_EQ(p[0].total_u, 0.2);
  EXPECT_DOUBLE_EQ(p[1].total_u, 0.4);
  EXPECT_DOUBLE_EQ(p[0].beta_lo, 0.6);
  EXPECT_DOUBLE_EQ(p[0].beta_hi, 0.6);  // beta axis pins D = b*T exactly
  EXPECT_DOUBLE_EQ(p[2].beta_lo, 1.0);
  EXPECT_EQ(p[0].n_masters, 1u);
  EXPECT_EQ(p[4].n_masters, 3u);
  EXPECT_EQ(e.base.n_masters, 1u);  // first axis value
  EXPECT_TRUE(has_multi_axis(e.points));
}

TEST(CliGrid, SingleMastersValueStaysLegacyShaped) {
  GridCliArgs args;
  args.u = "0.3:0.9:3";
  args.masters = "4";
  const Expansion e = expand(args);
  ASSERT_TRUE(e.ok) << e.error;
  EXPECT_EQ(e.base.n_masters, 4u);
  for (const SweepPoint& pt : e.points) EXPECT_EQ(pt.n_masters, 0u);
  EXPECT_FALSE(has_multi_axis(e.points));
}

TEST(CliGrid, SplitAndSkewApplyToBase) {
  GridCliArgs args;
  args.masters = "3";
  args.split = "0.5,0.3,0.2";
  const Expansion e = expand(args);
  ASSERT_TRUE(e.ok) << e.error;
  ASSERT_EQ(e.base.master_split.size(), 3u);
  EXPECT_DOUBLE_EQ(e.base.master_split[1], 0.3);

  GridCliArgs skew_args;
  skew_args.skew = "0.75";
  const Expansion s = expand(skew_args);
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_DOUBLE_EQ(s.base.master_skew, 0.75);
}

TEST(CliGrid, RejectsInvertedUAxis) {
  GridCliArgs args;
  args.u = "0.9:0.1:5";
  EXPECT_EQ(expand_error(args), "--u grid is inverted (LO > HI)");
}

TEST(CliGrid, RejectsZeroLengthAxes) {
  GridCliArgs u0;
  u0.u = "0.1:0.9:0";
  EXPECT_EQ(expand_error(u0), "--u grid has a zero-length axis (STEPS must be >= 1)");
  GridCliArgs b0;
  b0.beta = "0.5:1.0:0";
  EXPECT_EQ(expand_error(b0), "--beta grid has a zero-length axis (STEPS must be >= 1)");
}

TEST(CliGrid, RejectsNonPositiveLows) {
  GridCliArgs u0;
  u0.u = "0:0.9:5";
  EXPECT_EQ(expand_error(u0), "--u grid needs LO > 0");
  GridCliArgs b0;
  b0.beta = "0:1.0:3";
  EXPECT_EQ(expand_error(b0), "--beta grid needs LO > 0");
}

TEST(CliGrid, RejectsInvertedBetaAxisAndSpread) {
  GridCliArgs axis;
  axis.beta = "1.0:0.5:3";
  EXPECT_EQ(expand_error(axis), "--beta grid is inverted (LO > HI)");
  GridCliArgs spread;
  spread.beta_lo = "1.0";
  spread.beta_hi = "0.5";
  EXPECT_EQ(expand_error(spread), "inverted deadline spread (--beta-lo > --beta-hi)");
}

TEST(CliGrid, RejectsBetaAxisCombinedWithSpread) {
  GridCliArgs args;
  args.beta = "0.5:1.0:3";
  args.beta_lo = "0.5";
  const std::string err = expand_error(args);
  EXPECT_NE(err.find("--beta"), std::string::npos);
  EXPECT_NE(err.find("--beta-lo/--beta-hi"), std::string::npos);
}

TEST(CliGrid, RejectsSplitCountMismatch) {
  GridCliArgs args;
  args.masters = "4";
  args.split = "1,2,3";
  EXPECT_EQ(expand_error(args),
            "--split needs exactly one weight per master (got 3 weights for 4 masters)");
  // Without --masters the base default is the reference count.
  GridCliArgs no_masters;
  no_masters.split = "1,2";
  EXPECT_EQ(expand_error(no_masters, /*base_masters=*/3),
            "--split needs exactly one weight per master (got 2 weights for 3 masters)");
}

TEST(CliGrid, RejectsSplitAgainstMastersAxisAndSkewMix) {
  GridCliArgs axis;
  axis.masters = "2,3";
  axis.split = "1,2";
  EXPECT_NE(expand_error(axis).find("multi-valued --masters axis"), std::string::npos);
  GridCliArgs both;
  both.split = "1";
  both.skew = "0.5";
  EXPECT_EQ(expand_error(both), "--split and --skew are mutually exclusive");
}

TEST(CliGrid, RejectsMalformedLists) {
  GridCliArgs m;
  m.masters = "2,,3";
  EXPECT_EQ(expand_error(m), "--masters needs a comma list of integers in [1, 4096]");
  GridCliArgs m0;
  m0.masters = "0";
  EXPECT_EQ(expand_error(m0), "--masters needs a comma list of integers in [1, 4096]");
  GridCliArgs w;
  w.split = "1,-2";
  EXPECT_EQ(expand_error(w), "--split weights must be positive numbers");
  GridCliArgs s;
  s.skew = "-1";
  EXPECT_EQ(expand_error(s), "--skew needs a number >= 0");
}

TEST(CliGrid, RejectsAmbiguousZeroSkew) {
  // master_skew == 0 is the workload layer's "off" sentinel; accepting
  // --skew 0 would silently load every master to the full u (factor-K jump
  // against any positive skew in the same sweep series).
  GridCliArgs s;
  s.skew = "0";
  const std::string err = expand_error(s);
  EXPECT_NE(err.find("--skew 0 is ambiguous"), std::string::npos);
  EXPECT_NE(err.find("--split 1,1,..."), std::string::npos);
}

TEST(CliGrid, RejectsAstronomicalCrossProductsBeforeExpanding) {
  // Each axis is individually legal (<= 1e6 steps) but the product is ~1e12
  // points; this must be a clean error, not an OOM mid-materialization.
  GridCliArgs args;
  args.u = "0.1:0.9:1000000";
  args.beta = "0.1:0.9:1000000";
  const std::string err = expand_error(args);
  EXPECT_NE(err.find("grid too large"), std::string::npos);
  EXPECT_NE(err.find("shrink the axis STEPS"), std::string::npos);
}

TEST(CliOutputPath, FileDestinationsNeedAnExistingParentDirectory) {
  std::string error;
  EXPECT_TRUE(validate_cli_output_file("out.csv", "--csv", error));  // parent "."
  EXPECT_TRUE(validate_cli_output_file("/tmp/profisched_out.json", "--json", error));

  EXPECT_FALSE(validate_cli_output_file("/nonexistent_profisched/out.csv", "--csv", error));
  EXPECT_NE(error.find("--csv"), std::string::npos) << error;
  EXPECT_NE(error.find("does not exist"), std::string::npos) << error;

  // A directory is never a valid output FILE.
  EXPECT_FALSE(validate_cli_output_file("/tmp", "--metrics", error));
  EXPECT_NE(error.find("--metrics"), std::string::npos) << error;
}

TEST(CliOutputPath, DirDestinationsRejectFileAncestors) {
  std::string error;
  EXPECT_TRUE(validate_cli_output_dir("/tmp", "--cache", error));
  // Creatable-from-scratch trees are fine: create_directories builds them.
  EXPECT_TRUE(validate_cli_output_dir("/tmp/profisched_new/a/b", "--cache", error));
  EXPECT_TRUE(validate_cli_output_dir("relative_new_dir", "--cache", error));

  // /dev/null exists and is not a directory — no component can go below it.
  EXPECT_FALSE(validate_cli_output_dir("/dev/null/cache", "--cache", error));
  EXPECT_NE(error.find("--cache"), std::string::npos) << error;
  EXPECT_NE(error.find("not a directory"), std::string::npos) << error;
}

TEST(CliGrid, ScalarParsersStillStrict) {
  double lo = 0, hi = 0;
  std::size_t steps = 0;
  EXPECT_TRUE(parse_cli_u_grid("0.1:0.9:9", lo, hi, steps));
  EXPECT_FALSE(parse_cli_u_grid("0.1:0.9", lo, hi, steps));
  EXPECT_FALSE(parse_cli_u_grid("0.1:0.9:9x", lo, hi, steps));
  EXPECT_FALSE(parse_cli_u_grid("-0.1:0.9:9", lo, hi, steps));
}

}  // namespace
}  // namespace profisched::engine
