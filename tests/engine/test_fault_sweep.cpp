// Acceptance properties of the fault-injection axis at sweep scale:
//  * a faulted combined run over 100+ UUniFast scenarios per policy keeps
//    every must-never-fire consistency flag at zero — the degraded analysis
//    (frame scaling + rotation dead time) dominates everything the faulted
//    simulation observes, and no degraded-accepted scenario ever misses;
//  * with token loss > 0 the observed miss-free curves are strictly worse
//    than the fault-free ones somewhere (injection is not a no-op);
//  * faulted results are bit-identical for every thread count;
//  * the fault knobs are folded into the cache digest: warm faulted reruns
//    replay exactly, and a zero-fault run never collides with a faulted one.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "dist/result_cache.hpp"
#include "engine/sim_aggregate.hpp"
#include "engine/sweep_runner.hpp"

namespace profisched::engine {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test, removed on destruction.
class CacheDir {
 public:
  explicit CacheDir(const char* name)
      : path_((fs::temp_directory_path() / "profisched_fault_sweep_test" / name).string()) {
    fs::remove_all(path_);
  }
  ~CacheDir() { fs::remove_all(fs::path(path_).parent_path()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

profibus::FaultModel harsh_faults() {
  profibus::FaultModel f;
  f.token_loss_prob = 0.05;
  f.token_recovery = 1'000;
  f.corruption_prob = 0.05;
  f.max_retransmissions = 2;
  f.churn_prob = 0.02;
  f.churn_offline = 10'000;
  f.burst_correlation = 0.5;
  return f;
}

SimSweepSpec faulted_spec() {
  SimSweepSpec spec;
  spec.sweep.base.n_masters = 2;
  spec.sweep.base.streams_per_master = 4;
  spec.sweep.base.ttr = 4'000;
  spec.sweep.points = {SweepPoint{0.2, 0.5, 1.0}, SweepPoint{0.4, 0.5, 1.0},
                       SweepPoint{0.6, 0.5, 1.0}, SweepPoint{0.8, 0.4, 1.0}};
  spec.sweep.scenarios_per_point = 30;  // 120 scenarios per policy
  spec.sweep.policies = {Policy::Fcfs, Policy::Dm, Policy::Edf};
  spec.sweep.seed = 1999;
  spec.replications = 2;
  spec.sim.horizon_cycles = 30.0;
  spec.sim.faults = harsh_faults();
  return spec;
}

void expect_same_combined(const CombinedResult& a, const CombinedResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].sim.id, b.outcomes[i].sim.id);
    EXPECT_EQ(a.outcomes[i].analytic_schedulable, b.outcomes[i].analytic_schedulable);
    EXPECT_EQ(a.outcomes[i].analytic_wcrt, b.outcomes[i].analytic_wcrt);
    EXPECT_EQ(a.outcomes[i].degraded_schedulable, b.outcomes[i].degraded_schedulable);
    EXPECT_EQ(a.outcomes[i].degraded_wcrt, b.outcomes[i].degraded_wcrt);
    EXPECT_EQ(a.outcomes[i].bound_violations, b.outcomes[i].bound_violations);
    EXPECT_EQ(a.outcomes[i].sim.observed_max, b.outcomes[i].sim.observed_max);
    EXPECT_EQ(a.outcomes[i].sim.misses, b.outcomes[i].sim.misses);
    EXPECT_EQ(a.outcomes[i].sim.dropped, b.outcomes[i].sim.dropped);
  }
}

TEST(FaultSweep, DegradedBoundsHoldOn100PlusFaultedScenariosPerPolicy) {
  const SimSweepSpec spec = faulted_spec();
  SweepRunner runner;
  const CombinedResult result = runner.run_combined(spec);
  ASSERT_EQ(result.outcomes.size(), 120u);

  // The must-never-fire flags, fault axis on.
  EXPECT_EQ(result.total_bound_violations(), 0u);
  EXPECT_EQ(result.accept_but_miss_count(), 0u);

  const ConsistencyTable table = consistency_table(spec, result);
  ASSERT_TRUE(table.fault_axis);
  ASSERT_EQ(table.rows.size(), 360u);
  EXPECT_EQ(table.accept_but_miss_count(), 0u);
  EXPECT_EQ(table.total_bound_violations(), 0u);
  std::size_t observed_something = 0;
  for (const ConsistencyRow& r : table.rows) {
    EXPECT_FALSE(r.accept_but_miss) << "scenario " << r.id << " policy " << r.policy;
    EXPECT_EQ(r.bound_violations, 0u) << "scenario " << r.id << " policy " << r.policy;
    // Degraded bounds weaken monotonically: accept implies clean accept,
    // and a bounded degraded WCRT dominates the clean one.
    EXPECT_LE(r.degraded_schedulable, r.analytic_schedulable);
    if (r.analytic_wcrt != kNoBound) {
      EXPECT_TRUE(r.degraded_wcrt == kNoBound || r.degraded_wcrt >= r.analytic_wcrt);
    }
    // The degraded bound dominates everything the faulted simulation saw.
    if (r.degraded_wcrt != kNoBound && r.observed_max > 0) {
      EXPECT_GE(r.degraded_wcrt, r.observed_max)
          << "scenario " << r.id << " policy " << r.policy;
      ++observed_something;
    }
  }
  EXPECT_GT(observed_something, 100u);  // not vacuous
}

TEST(FaultSweep, TokenLossMakesMissFreeCurvesStrictlyWorse) {
  SimSweepSpec faulted = faulted_spec();
  SimSweepSpec clean = faulted_spec();
  clean.sim.faults = profibus::FaultModel{};
  SweepRunner runner;
  const SimCurves cf = aggregate_sim(faulted, runner.run_sim(faulted));
  const SimCurves cc = aggregate_sim(clean, runner.run_sim(clean));
  ASSERT_EQ(cf.points.size(), cc.points.size());
  // Pointwise no-better, and strictly worse somewhere: churn drops and
  // loss-delayed rotations must cost clean deliveries.
  bool strictly_worse = false;
  for (std::size_t i = 0; i < cf.points.size(); ++i) {
    for (std::size_t p = 0; p < cf.policies.size(); ++p) {
      EXPECT_LE(cf.points[i].miss_free[p], cc.points[i].miss_free[p])
          << "point " << i << " policy " << cf.policies[p];
      if (cf.points[i].miss_free[p] < cc.points[i].miss_free[p]) strictly_worse = true;
    }
  }
  EXPECT_TRUE(strictly_worse);
}

TEST(FaultSweep, FaultedResultsAreInvariantUnderThreadCount) {
  const SimSweepSpec spec = faulted_spec();
  SweepRunner one(1);
  SweepRunner four(4);
  const CombinedResult r1 = one.run_combined(spec);
  const CombinedResult r4 = four.run_combined(spec);
  expect_same_combined(r1, r4);
  EXPECT_EQ(consistency_table(spec, r1).to_csv(), consistency_table(spec, r4).to_csv());
  EXPECT_EQ(consistency_table(spec, r1).to_json(), consistency_table(spec, r4).to_json());
}

TEST(FaultSweep, WarmCacheReplaysFaultedRunsExactly) {
  SimSweepSpec spec = faulted_spec();
  spec.sweep.points = {SweepPoint{0.4, 0.5, 1.0}};
  spec.sweep.scenarios_per_point = 8;
  CacheDir dir("warm");
  dist::ResultCache cache(dir.path());
  SweepRunner runner(2);
  const CombinedResult cold = runner.run_combined(spec, &cache);
  EXPECT_EQ(cold.cache_hits, 0u);
  const CombinedResult warm = runner.run_combined(spec, &cache);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hits, spec.sweep.policies.size() * 8);
  expect_same_combined(cold, warm);
}

TEST(FaultSweep, FaultKnobsAreFoldedIntoTheCacheDigest) {
  SimSweepSpec faulted = faulted_spec();
  faulted.sweep.points = {SweepPoint{0.4, 0.5, 1.0}};
  faulted.sweep.scenarios_per_point = 6;
  SimSweepSpec clean = faulted;
  clean.sim.faults = profibus::FaultModel{};
  CacheDir dir("digest");
  dist::ResultCache cache(dir.path());
  SweepRunner runner(2);
  // Faulted run populates the cache; the zero-fault rerun must not hit any
  // of its records (different params digest), and vice versa.
  const CombinedResult f1 = runner.run_combined(faulted, &cache);
  const CombinedResult c1 = runner.run_combined(clean, &cache);
  EXPECT_EQ(c1.cache_hits, 0u);
  const CombinedResult f2 = runner.run_combined(faulted, &cache);
  const CombinedResult c2 = runner.run_combined(clean, &cache);
  EXPECT_EQ(f2.cache_misses, 0u);
  EXPECT_EQ(c2.cache_misses, 0u);
  expect_same_combined(f1, f2);
  expect_same_combined(c1, c2);
  // The clean rerun through the cache carries no degraded columns.
  EXPECT_TRUE(c2.outcomes[0].degraded_schedulable.empty());
  EXPECT_FALSE(f2.outcomes[0].degraded_schedulable.empty());
}

}  // namespace
}  // namespace profisched::engine
