// Round-trip and reduction properties of the simulation-sweep serializations:
// SimCurves and ConsistencyTable CSV/JSON parse back exactly what they emit
// (including kNoBound analytic bounds and full-range 64-bit seeds), and the
// aggregations reduce outcomes deterministically.
#include "engine/sim_aggregate.hpp"

#include <gtest/gtest.h>

namespace profisched::engine {
namespace {

SimCurves sample_curves() {
  SimCurves c;
  c.policies = {"FCFS", "DM"};
  c.points.push_back(
      SimCurvePoint{0.3, 0.5, 1.0, 0, 40, {40, 38}, {0, 7}, {0, 0}, {1200, 4096}, {900, 3000}});
  c.points.push_back(SimCurvePoint{
      0.9, 0.5, 1.0, 0, 40, {12, 30}, {220, 11}, {3, 0}, {99999, 1 << 20}, {80000, 1 << 19}});
  return c;
}

void expect_same_curves(const SimCurves& a, const SimCurves& b) {
  ASSERT_EQ(a.policies, b.policies);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].total_u, b.points[i].total_u);
    EXPECT_DOUBLE_EQ(a.points[i].beta_lo, b.points[i].beta_lo);
    EXPECT_DOUBLE_EQ(a.points[i].beta_hi, b.points[i].beta_hi);
    EXPECT_EQ(a.points[i].scenarios, b.points[i].scenarios);
    EXPECT_EQ(a.points[i].miss_free, b.points[i].miss_free);
    EXPECT_EQ(a.points[i].total_misses, b.points[i].total_misses);
    EXPECT_EQ(a.points[i].total_dropped, b.points[i].total_dropped);
    EXPECT_EQ(a.points[i].max_observed, b.points[i].max_observed);
    EXPECT_EQ(a.points[i].quantile_observed, b.points[i].quantile_observed);
  }
}

TEST(SimAggregate, CurvesCsvRoundTrip) {
  const SimCurves c = sample_curves();
  const SimCurves back = SimCurves::from_csv(c.to_csv());
  expect_same_curves(c, back);
  // Emitting again reproduces the bytes.
  EXPECT_EQ(c.to_csv(), back.to_csv());
}

TEST(SimAggregate, CurvesJsonRoundTrip) {
  const SimCurves c = sample_curves();
  const SimCurves back = SimCurves::from_json(c.to_json());
  expect_same_curves(c, back);
  EXPECT_EQ(c.to_json(), back.to_json());
}

TEST(SimAggregate, CurvesRejectMalformedInput) {
  EXPECT_THROW((void)SimCurves::from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)SimCurves::from_csv("a,b,c\n"), std::invalid_argument);
  EXPECT_THROW((void)SimCurves::from_csv(SimCurves{}.to_csv() + "1,2,3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)SimCurves::from_json("{}"), std::invalid_argument);
  EXPECT_THROW((void)SimCurves::from_json("not json"), std::invalid_argument);
}

ConsistencyTable sample_table() {
  ConsistencyTable t;
  ConsistencyRow a;
  a.id = 17;
  a.seed = 18446744073709551615ULL;  // full uint64 range must survive
  a.total_u = 0.75;
  a.policy = "EDF";
  a.analytic_schedulable = true;
  a.analytic_wcrt = 52'000;
  a.observed_max = 13'000;
  a.observed_p99 = 9'500;
  a.misses = 0;
  a.completed = 812;
  a.dropped = 0;
  a.bound_violations = 0;
  a.accept_but_miss = false;
  ConsistencyRow b;
  b.id = 18;
  b.seed = 3;
  b.total_u = 1.25;
  b.policy = "FCFS";
  b.analytic_schedulable = false;
  b.analytic_wcrt = kNoBound;  // diverged iteration serializes exactly
  b.observed_max = 880'000;
  b.observed_p99 = 880'000;
  b.misses = 41;
  b.completed = 96;
  b.dropped = 5;
  b.bound_violations = 0;
  b.accept_but_miss = false;
  t.rows = {a, b};
  return t;
}

void expect_same_rows(const ConsistencyTable& x, const ConsistencyTable& y) {
  ASSERT_EQ(x.rows.size(), y.rows.size());
  EXPECT_EQ(x.fault_axis, y.fault_axis);
  for (std::size_t i = 0; i < x.rows.size(); ++i) {
    EXPECT_EQ(x.rows[i].id, y.rows[i].id);
    EXPECT_EQ(x.rows[i].seed, y.rows[i].seed);
    EXPECT_DOUBLE_EQ(x.rows[i].total_u, y.rows[i].total_u);
    EXPECT_EQ(x.rows[i].policy, y.rows[i].policy);
    EXPECT_EQ(x.rows[i].analytic_schedulable, y.rows[i].analytic_schedulable);
    EXPECT_EQ(x.rows[i].analytic_wcrt, y.rows[i].analytic_wcrt);
    EXPECT_EQ(x.rows[i].degraded_schedulable, y.rows[i].degraded_schedulable);
    EXPECT_EQ(x.rows[i].degraded_wcrt, y.rows[i].degraded_wcrt);
    EXPECT_EQ(x.rows[i].observed_max, y.rows[i].observed_max);
    EXPECT_EQ(x.rows[i].observed_p99, y.rows[i].observed_p99);
    EXPECT_EQ(x.rows[i].misses, y.rows[i].misses);
    EXPECT_EQ(x.rows[i].completed, y.rows[i].completed);
    EXPECT_EQ(x.rows[i].dropped, y.rows[i].dropped);
    EXPECT_EQ(x.rows[i].bound_violations, y.rows[i].bound_violations);
    EXPECT_EQ(x.rows[i].accept_but_miss, y.rows[i].accept_but_miss);
  }
}

TEST(SimAggregate, ConsistencyCsvRoundTrip) {
  const ConsistencyTable t = sample_table();
  const ConsistencyTable back = ConsistencyTable::from_csv(t.to_csv());
  expect_same_rows(t, back);
  EXPECT_EQ(t.to_csv(), back.to_csv());
}

TEST(SimAggregate, ConsistencyJsonRoundTrip) {
  const ConsistencyTable t = sample_table();
  const ConsistencyTable back = ConsistencyTable::from_json(t.to_json());
  expect_same_rows(t, back);
  EXPECT_EQ(t.to_json(), back.to_json());
}

// The fault axis adds degraded_schedulable/degraded_wcrt to both formats —
// which must round-trip — while a zero-fault table's serialization stays
// byte-free of any degraded column.
TEST(SimAggregate, FaultAxisConsistencyRoundTrips) {
  ConsistencyTable t = sample_table();
  t.fault_axis = true;
  t.rows[0].degraded_schedulable = true;
  t.rows[0].degraded_wcrt = 61'000;
  t.rows[1].degraded_schedulable = false;
  t.rows[1].degraded_wcrt = kNoBound;

  const ConsistencyTable csv_back = ConsistencyTable::from_csv(t.to_csv());
  expect_same_rows(t, csv_back);
  EXPECT_EQ(t.to_csv(), csv_back.to_csv());
  const ConsistencyTable json_back = ConsistencyTable::from_json(t.to_json());
  expect_same_rows(t, json_back);
  EXPECT_EQ(t.to_json(), json_back.to_json());

  // Fault axis composes with the multi-axis columns (19-column layout).
  t.multi_axis = true;
  t.rows[0].beta_lo = 0.4;
  t.rows[0].beta_hi = 0.9;
  t.rows[0].n_masters = 3;
  const ConsistencyTable both = ConsistencyTable::from_csv(t.to_csv());
  EXPECT_TRUE(both.multi_axis);
  EXPECT_TRUE(both.fault_axis);
  expect_same_rows(t, both);
  expect_same_rows(t, ConsistencyTable::from_json(t.to_json()));

  // Zero-fault serializations never mention the degraded columns.
  const ConsistencyTable clean = sample_table();
  EXPECT_EQ(clean.to_csv().find("degraded"), std::string::npos);
  EXPECT_EQ(clean.to_json().find("degraded"), std::string::npos);
  EXPECT_EQ(clean.to_json().find("fault_axis"), std::string::npos);
}

TEST(SimAggregate, ConsistencyHelpersCountViolations) {
  ConsistencyTable t = sample_table();
  EXPECT_EQ(t.accept_but_miss_count(), 0u);
  EXPECT_EQ(t.total_bound_violations(), 0u);
  t.rows[0].accept_but_miss = true;
  t.rows[1].bound_violations = 3;
  EXPECT_EQ(t.accept_but_miss_count(), 1u);
  EXPECT_EQ(t.total_bound_violations(), 3u);
}

TEST(SimAggregate, PessimismRatio) {
  ConsistencyRow r;
  r.analytic_wcrt = 200;
  r.observed_max = 100;
  EXPECT_DOUBLE_EQ(r.pessimism(), 2.0);
  r.analytic_wcrt = kNoBound;
  EXPECT_DOUBLE_EQ(r.pessimism(), 0.0);  // undefined for a diverged bound
  r.analytic_wcrt = 200;
  r.observed_max = 0;
  EXPECT_DOUBLE_EQ(r.pessimism(), 0.0);  // nothing observed
}

TEST(SimAggregate, ConsistencyRejectsMalformedInput) {
  EXPECT_THROW((void)ConsistencyTable::from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)ConsistencyTable::from_csv("id,seed\n"), std::invalid_argument);
  EXPECT_THROW((void)ConsistencyTable::from_csv(ConsistencyTable{}.to_csv() + "1,2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ConsistencyTable::from_json("{\"rows\": [{}]}"), std::invalid_argument);
  EXPECT_THROW((void)ConsistencyTable::from_json(""), std::invalid_argument);
}

TEST(SimAggregate, AggregateSimReducesOutcomesPerPoint) {
  SimSweepSpec spec;
  spec.sweep.points = {SweepPoint{0.4, 0.5, 1.0}, SweepPoint{0.8, 0.5, 1.0}};
  spec.sweep.scenarios_per_point = 2;
  spec.sweep.policies = {Policy::Fcfs, Policy::Dm};

  SimSweepResult result;
  result.outcomes.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    SimScenarioOutcome& o = result.outcomes[i];
    o.id = i;
    o.point = i / 2;
    o.observed_max = {Ticks(100 + 10 * static_cast<Ticks>(i)), Ticks(50)};
    o.observed_p99 = {Ticks(90), Ticks(40)};
    o.released = {10, 10};
    o.completed = {10, 10};
    o.misses = {i == 3 ? 5ULL : 0ULL, 0ULL};
    o.dropped = {0ULL, i == 0 ? 2ULL : 0ULL};
  }
  const SimCurves c = aggregate_sim(spec, result);
  ASSERT_EQ(c.points.size(), 2u);
  EXPECT_EQ(c.points[0].scenarios, 2u);
  EXPECT_EQ(c.points[0].miss_free[0], 2u);      // FCFS: both miss-free at point 0
  EXPECT_EQ(c.points[1].miss_free[0], 1u);      // scenario 3 missed
  EXPECT_EQ(c.points[1].total_misses[0], 5u);
  EXPECT_EQ(c.points[1].max_observed[0], 130);
  EXPECT_EQ(c.points[1].quantile_observed[0], 90);  // max of the per-scenario p99s
  EXPECT_EQ(c.points[1].miss_free[1], 2u);      // DM never missed at point 1...
  EXPECT_EQ(c.points[0].miss_free[1], 1u);      // ...but dropped cycles disqualify
  EXPECT_EQ(c.points[0].total_dropped[1], 2u);  //    scenario 0 at point 0
}

}  // namespace
}  // namespace profisched::engine
