// Tentpole lock-down for the multi-axis sweep subsystem (PR 5): a
// u × beta × masters cross-product grid flows through scenario generation,
// both engines, and aggregation with every determinism guarantee intact —
// thread-count invariance, extended-format round-trips, per-point masters
// override, and warm-cache reuse when a grid is extended along the beta axis.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "dist/result_cache.hpp"
#include "engine/aggregate.hpp"
#include "engine/sim_aggregate.hpp"
#include "engine/sweep_runner.hpp"

namespace profisched::engine {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test, removed on destruction.
class TempCacheDir {
 public:
  explicit TempCacheDir(const std::string& name)
      : path_((fs::temp_directory_path() / "profisched_multiaxis_test" / name).string()) {
    fs::remove_all(path_);
  }
  ~TempCacheDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// 2 masters-values x 2 beta-values x 2 u-values, small enough to run under
/// sanitizers, large enough that every axis matters.
SweepSpec multi_axis_spec() {
  SweepSpec spec;
  spec.base.n_masters = 1;
  spec.base.streams_per_master = 3;
  spec.base.ttr = 3'000;
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}}) {
    for (const double b : {0.7, 1.0}) {
      for (const double u : {0.4, 0.8}) {
        spec.points.push_back(SweepPoint{u, b, b, m});
      }
    }
  }
  spec.scenarios_per_point = 10;
  spec.policies = {Policy::Fcfs, Policy::Dm, Policy::Edf};
  spec.seed = 2026;
  return spec;
}

TEST(MultiAxisSweep, MakeScenarioHonoursEveryAxis) {
  const SweepSpec spec = multi_axis_spec();
  for (std::size_t pt = 0; pt < spec.points.size(); ++pt) {
    const Scenario sc = SweepRunner::make_scenario(spec, pt * spec.scenarios_per_point);
    EXPECT_EQ(sc.net.n_masters(), spec.points[pt].n_masters);
    EXPECT_EQ(sc.total_u, spec.points[pt].total_u);
    EXPECT_EQ(sc.beta_lo, spec.points[pt].beta_lo);
    // beta pins the deadline ratio: D = clamp(round(b*T), Ch..) per stream.
    for (const profibus::Master& m : sc.net.masters) {
      for (const profibus::MessageStream& s : m.high_streams) {
        const double b = spec.points[pt].beta_lo;
        const Ticks expect_d =
            std::max<Ticks>(static_cast<Ticks>(std::llround(b * static_cast<double>(s.T))),
                            s.Ch);
        EXPECT_EQ(s.D, expect_d);
      }
    }
  }
}

TEST(MultiAxisSweep, ResultsAreInvariantUnderThreadCount) {
  const SweepSpec spec = multi_axis_spec();
  SweepRunner one(1);
  SweepRunner five(5);
  const SweepResult r1 = one.run(spec);
  const SweepResult r5 = five.run(spec);
  const std::string csv = aggregate(spec, r1).to_csv();
  EXPECT_EQ(csv, aggregate(spec, r5).to_csv());
  EXPECT_EQ(aggregate(spec, r1).to_json(), aggregate(spec, r5).to_json());
}

TEST(MultiAxisSweep, ExtendedCsvAndJsonRoundTrip) {
  const SweepSpec spec = multi_axis_spec();
  SweepRunner runner(2);
  const SweepCurves curves = aggregate(spec, runner.run(spec));

  const std::string csv = curves.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "u,beta_lo,beta_hi,masters,scenarios,policy,schedulable,ratio");
  const SweepCurves from_csv = SweepCurves::from_csv(csv);
  EXPECT_EQ(from_csv.to_csv(), csv);
  ASSERT_EQ(from_csv.points.size(), curves.points.size());
  for (std::size_t i = 0; i < curves.points.size(); ++i) {
    EXPECT_EQ(from_csv.points[i].n_masters, curves.points[i].n_masters);
  }

  const std::string json = curves.to_json();
  EXPECT_NE(json.find("\"masters\""), std::string::npos);
  EXPECT_EQ(SweepCurves::from_json(json).to_json(), json);
  // Cross-format agreement on the extended layout.
  EXPECT_EQ(SweepCurves::from_csv(csv).to_json(), json);
}

TEST(MultiAxisSweep, SimCurvesCarryTheMastersColumn) {
  SimSweepSpec spec;
  spec.sweep = multi_axis_spec();
  spec.sweep.scenarios_per_point = 4;
  spec.replications = 1;
  SweepRunner runner(2);
  const SimCurves curves = aggregate_sim(spec, runner.run_sim(spec));
  const std::string csv = curves.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "u,beta_lo,beta_hi,masters,scenarios,policy,miss_free,total_misses,total_dropped,"
            "max_observed,quantile_observed,ratio");
  EXPECT_EQ(SimCurves::from_csv(csv).to_csv(), csv);
  const std::string json = curves.to_json();
  EXPECT_EQ(SimCurves::from_json(json).to_json(), json);
  EXPECT_EQ(SimCurves::from_csv(csv).to_json(), json);
}

TEST(MultiAxisSweep, ConsistencyTableCarriesAxisColumns) {
  SimSweepSpec spec;
  spec.sweep = multi_axis_spec();
  spec.sweep.scenarios_per_point = 3;
  spec.replications = 1;
  SweepRunner runner(2);
  const ConsistencyTable table = consistency_table(spec, runner.run_combined(spec));
  EXPECT_TRUE(table.multi_axis);
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "id,seed,u,beta_lo,beta_hi,masters,policy,analytic_schedulable,analytic_wcrt,"
            "observed_max,observed_p99,misses,completed,dropped,bound_violations,"
            "accept_but_miss,pessimism");
  const ConsistencyTable back = ConsistencyTable::from_csv(csv);
  EXPECT_TRUE(back.multi_axis);
  EXPECT_EQ(back.to_csv(), csv);
  ASSERT_EQ(back.rows.size(), table.rows.size());
  EXPECT_EQ(back.rows[0].n_masters, table.rows[0].n_masters);
  EXPECT_EQ(back.rows[0].beta_lo, table.rows[0].beta_lo);
  const std::string json = table.to_json();
  const ConsistencyTable jback = ConsistencyTable::from_json(json);
  EXPECT_TRUE(jback.multi_axis);
  EXPECT_EQ(jback.to_json(), json);
  EXPECT_EQ(jback.to_csv(), csv);
}

TEST(MultiAxisSweep, BetaOnlyConsistencyRowsCarryTheEffectiveRingSize) {
  // A beta axis alone switches the table to the extended columns; the masters
  // column must then report the base ring size, not the 0 axis sentinel.
  SimSweepSpec spec;
  spec.sweep.base.n_masters = 3;
  spec.sweep.base.streams_per_master = 3;
  spec.sweep.base.ttr = 3'000;
  spec.sweep.points = {SweepPoint{0.4, 0.7, 0.7}, SweepPoint{0.4, 1.0, 1.0}};
  spec.sweep.scenarios_per_point = 2;
  spec.sweep.policies = {Policy::Dm};
  spec.sweep.seed = 3;
  spec.replications = 1;
  SweepRunner runner(1);
  const ConsistencyTable table = consistency_table(spec, runner.run_combined(spec));
  ASSERT_TRUE(table.multi_axis);
  for (const ConsistencyRow& r : table.rows) EXPECT_EQ(r.n_masters, 3u);
}

TEST(MultiAxisSweep, EmptyMultiAxisConsistencyTableKeepsItsFlag) {
  // With zero rows the per-row axis keys cannot carry the layout; both
  // serializations must still round-trip the flag (CSV via the header, JSON
  // via the explicit marker) or a re-serialize would flip formats.
  ConsistencyTable empty;
  empty.multi_axis = true;
  const ConsistencyTable from_csv = ConsistencyTable::from_csv(empty.to_csv());
  EXPECT_TRUE(from_csv.multi_axis);
  EXPECT_EQ(from_csv.to_csv(), empty.to_csv());
  const ConsistencyTable from_json = ConsistencyTable::from_json(empty.to_json());
  EXPECT_TRUE(from_json.multi_axis);
  EXPECT_EQ(from_json.to_json(), empty.to_json());
  // And the classic empty table keeps the historical grammar.
  ConsistencyTable classic;
  EXPECT_EQ(classic.to_json().find("multi_axis"), std::string::npos);
  EXPECT_FALSE(ConsistencyTable::from_json(classic.to_json()).multi_axis);
}

TEST(MultiAxisSweep, ClassicGridsKeepTheLegacyFormats) {
  SweepSpec spec = multi_axis_spec();
  // Collapse to a pure u-grid: constant beta, no per-point masters.
  spec.points = {SweepPoint{0.4, 0.5, 1.0}, SweepPoint{0.8, 0.5, 1.0}};
  SweepRunner runner(2);
  const SweepCurves curves = aggregate(spec, runner.run(spec));
  const std::string csv = curves.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "u,beta_lo,beta_hi,scenarios,policy,schedulable,ratio");
  EXPECT_EQ(curves.to_json().find("\"masters\""), std::string::npos);
  EXPECT_FALSE(has_multi_axis(spec.points));
}

/// Extending a swept grid along the beta axis re-serves every previously
/// computed (scenario, policy) result from the cache, provided the new beta
/// values are APPENDED: scenario generation is keyed by (sweep seed, global
/// id), so the original points' scenarios keep their ids — and therefore
/// their content — while inserted points would reshuffle ids and regenerate
/// different workloads (by design: the id keying is what makes sharded
/// execution deterministic).
TEST(MultiAxisSweep, BetaExtensionRunsWarmFromTheCache) {
  TempCacheDir dir("beta_extension");
  dist::ResultCache cache(dir.path());

  SweepSpec first;
  first.base.n_masters = 2;
  first.base.streams_per_master = 3;
  first.base.ttr = 3'000;
  for (const double b : {0.7, 1.0}) {
    for (const double u : {0.4, 0.8}) first.points.push_back(SweepPoint{u, b, b});
  }
  first.scenarios_per_point = 8;
  first.policies = {Policy::Fcfs, Policy::Dm};
  first.seed = 11;

  SweepRunner runner(2);
  const SweepResult cold = runner.run(first, &cache);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, first.total_scenarios() * first.policies.size());

  // Same grid plus one appended beta value: old ids (and content) stable.
  SweepSpec extended = first;
  for (const double u : {0.4, 0.8}) extended.points.push_back(SweepPoint{u, 0.85, 0.85});
  const SweepResult warm = runner.run(extended, &cache);
  // Every scenario of the original grid hits; only the new points compute.
  EXPECT_EQ(warm.cache_hits, first.total_scenarios() * first.policies.size());
  EXPECT_EQ(warm.cache_misses, 2 * first.scenarios_per_point * first.policies.size());

  // And the cached rows are bit-identical to an uncached run.
  const SweepResult reference = runner.run(extended);
  ASSERT_EQ(reference.outcomes.size(), warm.outcomes.size());
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    EXPECT_EQ(reference.outcomes[i].schedulable, warm.outcomes[i].schedulable);
    EXPECT_EQ(reference.outcomes[i].worst_slack, warm.outcomes[i].worst_slack);
    EXPECT_EQ(reference.outcomes[i].tcycle, warm.outcomes[i].tcycle);
  }
}

/// Asymmetric splits flow through the whole engine path: a skewed and a
/// symmetric sweep over the same grid differ in generated content (and so in
/// outcomes' seeds-to-content mapping), while staying deterministic.
TEST(MultiAxisSweep, AsymmetricSplitsAreDeterministicAndDistinct) {
  SweepSpec sym;
  sym.base.n_masters = 3;
  sym.base.streams_per_master = 3;
  sym.base.ttr = 4'000;
  sym.points = {SweepPoint{0.9, 0.5, 1.0}};
  sym.scenarios_per_point = 12;
  sym.policies = {Policy::Dm};
  sym.seed = 5;

  SweepSpec skew = sym;
  skew.base.master_skew = 1.0;

  SweepRunner runner(3);
  const SweepResult a1 = runner.run(skew);
  const SweepResult a2 = runner.run(skew);
  for (std::size_t i = 0; i < a1.outcomes.size(); ++i) {
    EXPECT_EQ(a1.outcomes[i].worst_slack, a2.outcomes[i].worst_slack);
  }
  // Content differs from the symmetric sweep (hash check is the strongest).
  EXPECT_NE(canonical_hash(SweepRunner::make_scenario(sym, 0)),
            canonical_hash(SweepRunner::make_scenario(skew, 0)));
}

}  // namespace
}  // namespace profisched::engine
