// The simulation backend's unit properties: policy mapping, deterministic
// (seed, replication)-keyed RNG streams, horizon derivation, config shaping
// (synchronous rep 0 vs randomly-phased reps, LP traffic, frame specs), and
// report summarization.
#include "engine/simulation_engine.hpp"

#include <gtest/gtest.h>

#include "engine/sweep_runner.hpp"
#include "profibus/token_ring_analysis.hpp"

namespace profisched::engine {
namespace {

SweepSpec one_point_spec() {
  SweepSpec spec;
  spec.base.n_masters = 2;
  spec.base.streams_per_master = 3;
  spec.base.ttr = 3'000;
  spec.points = {SweepPoint{0.5, 0.5, 1.0}};
  spec.scenarios_per_point = 4;
  spec.seed = 7;
  return spec;
}

TEST(SimulationEngine, PolicyMapping) {
  EXPECT_TRUE(SimulationEngine::simulable(Policy::Fcfs));
  EXPECT_TRUE(SimulationEngine::simulable(Policy::Dm));
  EXPECT_TRUE(SimulationEngine::simulable(Policy::Edf));
  EXPECT_FALSE(SimulationEngine::simulable(Policy::Opa));
  EXPECT_FALSE(SimulationEngine::simulable(Policy::TokenRing));
  EXPECT_FALSE(SimulationEngine::simulable(Policy::Holistic));
  EXPECT_EQ(SimulationEngine::to_ap_policy(Policy::Fcfs), profibus::ApPolicy::Fcfs);
  EXPECT_EQ(SimulationEngine::to_ap_policy(Policy::Dm), profibus::ApPolicy::Dm);
  EXPECT_EQ(SimulationEngine::to_ap_policy(Policy::Edf), profibus::ApPolicy::Edf);
  EXPECT_THROW((void)SimulationEngine::to_ap_policy(Policy::Opa), std::invalid_argument);
  EXPECT_THROW((void)SimulationEngine::to_ap_policy(Policy::Holistic), std::invalid_argument);
}

TEST(SimulationEngine, RepSeedDependsOnlyOnScenarioSeedAndRep) {
  EXPECT_EQ(SimulationEngine::rep_seed(42, 0), SimulationEngine::rep_seed(42, 0));
  EXPECT_NE(SimulationEngine::rep_seed(42, 0), SimulationEngine::rep_seed(42, 1));
  EXPECT_NE(SimulationEngine::rep_seed(42, 0), SimulationEngine::rep_seed(43, 0));
}

TEST(SimulationEngine, HorizonDerivesFromTcycleAndClamps) {
  const Scenario sc = SweepRunner::make_scenario(one_point_spec(), 0);
  const Ticks tcycle = profibus::t_cycle(sc.net);

  SimOptions opt;
  opt.horizon_cycles = 10.0;
  EXPECT_EQ(SimulationEngine(opt).horizon_for(sc), 10 * tcycle);

  opt.horizon_cap = 3 * tcycle;
  EXPECT_EQ(SimulationEngine(opt).horizon_for(sc), 3 * tcycle);

  opt.horizon = 12'345;  // explicit horizon wins
  EXPECT_EQ(SimulationEngine(opt).horizon_for(sc), 12'345);
}

TEST(SimulationEngine, RepZeroIsSynchronousLaterRepsArePhased) {
  const Scenario sc = SweepRunner::make_scenario(one_point_spec(), 1);
  const SimulationEngine engine;

  const sim::SimConfig sync = engine.make_config(sc, Policy::Dm, 0);
  EXPECT_TRUE(sync.hp_traffic.empty());  // synchronous pattern

  const sim::SimConfig phased = engine.make_config(sc, Policy::Dm, 1);
  ASSERT_EQ(phased.hp_traffic.size(), sc.net.n_masters());
  bool any_nonzero_phase = false;
  for (std::size_t k = 0; k < sc.net.n_masters(); ++k) {
    ASSERT_EQ(phased.hp_traffic[k].size(), sc.net.masters[k].nh());
    for (std::size_t i = 0; i < sc.net.masters[k].nh(); ++i) {
      EXPECT_GE(phased.hp_traffic[k][i].phase, 0);
      EXPECT_LT(phased.hp_traffic[k][i].phase, sc.net.masters[k].high_streams[i].T);
      any_nonzero_phase |= phased.hp_traffic[k][i].phase != 0;
    }
  }
  EXPECT_TRUE(any_nonzero_phase);

  // Same (scenario, rep) rebuilds the identical phasing.
  const sim::SimConfig again = engine.make_config(sc, Policy::Dm, 1);
  for (std::size_t k = 0; k < sc.net.n_masters(); ++k) {
    for (std::size_t i = 0; i < sc.net.masters[k].nh(); ++i) {
      EXPECT_EQ(phased.hp_traffic[k][i].phase, again.hp_traffic[k][i].phase);
    }
  }
}

TEST(SimulationEngine, LpTrafficAndFrameSpecsShapeTheConfig) {
  const Scenario sc = SweepRunner::make_scenario(one_point_spec(), 2);

  SimOptions opt;
  opt.lp_traffic = true;
  const sim::SimConfig lp = SimulationEngine(opt).make_config(sc, Policy::Fcfs, 0);
  ASSERT_EQ(lp.lp_traffic.size(), sc.net.n_masters());

  SimOptions frame;
  frame.cycle_model.kind = sim::CycleModel::Kind::FrameLevel;
  const sim::SimConfig fl = SimulationEngine(frame).make_config(sc, Policy::Fcfs, 0);
  ASSERT_EQ(fl.frame_specs.size(), sc.net.n_masters());
  for (std::size_t k = 0; k < sc.net.n_masters(); ++k) {
    EXPECT_EQ(fl.frame_specs[k].size(), sc.net.masters[k].nh());
  }

  Scenario no_specs = sc;
  no_specs.frame_specs.clear();
  EXPECT_THROW((void)SimulationEngine(frame).make_config(no_specs, Policy::Fcfs, 0),
               std::invalid_argument);
}

TEST(SimulationEngine, SimulateIsDeterministicPerRep) {
  const Scenario sc = SweepRunner::make_scenario(one_point_spec(), 3);
  SimOptions opt;
  opt.horizon_cycles = 20.0;
  opt.cycle_model.kind = sim::CycleModel::Kind::UniformFraction;  // exercises the RNG
  const SimulationEngine engine(opt);

  const SimSummary a = SimulationEngine::summarize(engine.simulate(sc, Policy::Edf, 1));
  const SimSummary b = SimulationEngine::summarize(engine.simulate(sc, Policy::Edf, 1));
  EXPECT_EQ(a.observed_max, b.observed_max);
  EXPECT_EQ(a.observed_p99, b.observed_p99);
  EXPECT_EQ(a.released, b.released);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_GT(a.completed, 0u);
}

TEST(SimulationEngine, SummarizeReducesStreamsAndHistograms) {
  sim::SimReport r;
  r.hp.resize(2);
  sim::StreamStats s1;
  s1.released = 10;
  s1.completed = 9;
  s1.deadline_misses = 2;
  s1.max_response = 500;
  sim::StreamStats s2;
  s2.released = 4;
  s2.completed = 4;
  s2.max_response = 900;
  r.hp[0].push_back(s1);
  r.hp[1].push_back(s2);

  const SimSummary sum = SimulationEngine::summarize(r);
  EXPECT_EQ(sum.observed_max, 900);
  EXPECT_EQ(sum.released, 14u);
  EXPECT_EQ(sum.completed, 13u);
  EXPECT_EQ(sum.misses, 2u);
  // No histograms collected: p99 falls back to the max.
  EXPECT_EQ(sum.observed_p99, 900);
}

}  // namespace
}  // namespace profisched::engine
