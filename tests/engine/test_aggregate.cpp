// Aggregation-layer tests: curve math and CSV/JSON round-trips.
#include "engine/aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace profisched::engine {
namespace {

SweepCurves sample_curves() {
  SweepCurves c;
  c.policies = {"FCFS", "DM", "EDF"};
  c.points = {
      CurvePoint{0.3, 0.5, 1.0, 0, 400, {123, 400, 400}},
      CurvePoint{0.6, 0.5, 1.0, 0, 400, {0, 287, 301}},
      CurvePoint{0.9, 0.25, 0.75, 0, 400, {0, 4, 36}},
  };
  return c;
}

TEST(Aggregate, RatioMath) {
  const SweepCurves c = sample_curves();
  EXPECT_DOUBLE_EQ(c.points[0].ratio(0), 123.0 / 400.0);
  EXPECT_DOUBLE_EQ(c.points[0].ratio(1), 1.0);
  EXPECT_DOUBLE_EQ(CurvePoint{}.ratio(0), 0.0);  // no scenarios -> 0, not NaN
}

TEST(Aggregate, CsvHeaderAndShape) {
  const std::string csv = sample_curves().to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "u,beta_lo,beta_hi,scenarios,policy,schedulable,ratio");
  // one header + 3 points x 3 policies rows
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 9);
}

TEST(Aggregate, CsvRoundTrips) {
  const SweepCurves c = sample_curves();
  const std::string csv = c.to_csv();
  const SweepCurves back = SweepCurves::from_csv(csv);
  ASSERT_EQ(back.policies, c.policies);
  ASSERT_EQ(back.points.size(), c.points.size());
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    EXPECT_EQ(back.points[i].scenarios, c.points[i].scenarios);
    EXPECT_EQ(back.points[i].schedulable, c.points[i].schedulable);
  }
  // emit ∘ parse is a fixed point on the engine's own output.
  EXPECT_EQ(back.to_csv(), csv);
}

TEST(Aggregate, JsonRoundTrips) {
  const SweepCurves c = sample_curves();
  const std::string json = c.to_json();
  const SweepCurves back = SweepCurves::from_json(json);
  ASSERT_EQ(back.policies, c.policies);
  ASSERT_EQ(back.points.size(), c.points.size());
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    EXPECT_EQ(back.points[i].scenarios, c.points[i].scenarios);
    EXPECT_EQ(back.points[i].schedulable, c.points[i].schedulable);
  }
  EXPECT_EQ(back.to_json(), json);
}

TEST(Aggregate, DuplicateGridPointsSurviveCsvRoundTrip) {
  // Two distinct grid points may share (u, beta) values; they must not be
  // merged on parse-back.
  SweepCurves c;
  c.policies = {"FCFS", "DM"};
  c.points = {
      CurvePoint{0.5, 0.5, 1.0, 0, 10, {3, 9}},
      CurvePoint{0.5, 0.5, 1.0, 0, 10, {4, 10}},
  };
  const std::string csv = c.to_csv();
  const SweepCurves back = SweepCurves::from_csv(csv);
  ASSERT_EQ(back.points.size(), 2u);
  EXPECT_EQ(back.points[0].schedulable, (std::vector<std::size_t>{3, 9}));
  EXPECT_EQ(back.points[1].schedulable, (std::vector<std::size_t>{4, 10}));
  EXPECT_EQ(back.to_csv(), csv);
}

TEST(Aggregate, CrossFormatAgreement) {
  const std::string csv = sample_curves().to_csv();
  const std::string json = sample_curves().to_json();
  EXPECT_EQ(SweepCurves::from_csv(csv).to_json(), json);
  EXPECT_EQ(SweepCurves::from_json(json).to_csv(), csv);
}

TEST(Aggregate, EmptyCurvesSerialize) {
  SweepCurves empty;
  EXPECT_EQ(SweepCurves::from_csv(empty.to_csv()).points.size(), 0u);
  EXPECT_EQ(SweepCurves::from_json(empty.to_json()).points.size(), 0u);
}

TEST(Aggregate, MalformedInputsThrow) {
  EXPECT_THROW((void)SweepCurves::from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)SweepCurves::from_csv("u,beta_lo\n1,2\n"), std::invalid_argument);
  EXPECT_THROW((void)SweepCurves::from_csv(
                   "u,beta_lo,beta_hi,scenarios,policy,schedulable,ratio\nx,y\n"),
               std::invalid_argument);
  EXPECT_THROW((void)SweepCurves::from_json("not json"), std::invalid_argument);
  EXPECT_THROW((void)SweepCurves::from_json("{\"policies\": [\"DM\"]}"),
               std::invalid_argument);
}

TEST(Aggregate, ReducesOutcomesByPoint) {
  SweepSpec spec;
  spec.points = {SweepPoint{0.2, 1.0, 1.0}, SweepPoint{0.8, 1.0, 1.0}};
  spec.scenarios_per_point = 2;
  spec.policies = {Policy::Fcfs, Policy::Dm};

  SweepResult result;
  result.outcomes.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    result.outcomes[i].point = i / 2;
    result.outcomes[i].schedulable = {i == 0, true};  // FCFS only on #0, DM always
  }
  const SweepCurves c = aggregate(spec, result);
  ASSERT_EQ(c.policies, (std::vector<std::string>{"FCFS", "DM"}));
  ASSERT_EQ(c.points.size(), 2u);
  EXPECT_EQ(c.points[0].scenarios, 2u);
  EXPECT_EQ(c.points[0].schedulable, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(c.points[1].schedulable, (std::vector<std::size_t>{0, 2}));
}

}  // namespace
}  // namespace profisched::engine
