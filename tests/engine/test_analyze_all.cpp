// Cross-policy batch regression: AnalysisEngine::analyze_all must report
// exactly what per-policy analyze() calls report — for every policy the
// engine dispatches, over randomized generated scenarios — while binding the
// scenario memo once.
#include <gtest/gtest.h>

#include "engine/analysis_engine.hpp"
#include "engine/sweep_runner.hpp"

namespace profisched::engine {
namespace {

const std::vector<Policy> kAllPolicies{Policy::Fcfs,  Policy::Dm,        Policy::Edf,
                                       Policy::Opa,   Policy::TokenRing, Policy::Holistic};

Scenario make(std::uint64_t id, double u) {
  SweepSpec spec;
  spec.base.n_masters = 2;
  spec.base.streams_per_master = 3;
  spec.base.ttr = 3'000;
  spec.points = {{u, 0.5, 1.0}};
  spec.scenarios_per_point = 64;
  return SweepRunner::make_scenario(spec, id);
}

void expect_same_report(const Report& a, const Report& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.schedulable, b.schedulable);
  EXPECT_EQ(a.tcycle, b.tcycle);
  EXPECT_EQ(a.tdel, b.tdel);
  EXPECT_EQ(a.n_streams, b.n_streams);
  EXPECT_EQ(a.streams_meeting, b.streams_meeting);
  EXPECT_EQ(a.worst_slack, b.worst_slack);
  ASSERT_EQ(a.detail.masters.size(), b.detail.masters.size());
  for (std::size_t k = 0; k < a.detail.masters.size(); ++k) {
    ASSERT_EQ(a.detail.masters[k].streams.size(), b.detail.masters[k].streams.size());
    EXPECT_EQ(a.detail.masters[k].schedulable, b.detail.masters[k].schedulable);
    for (std::size_t i = 0; i < a.detail.masters[k].streams.size(); ++i) {
      EXPECT_EQ(a.detail.masters[k].streams[i].Q, b.detail.masters[k].streams[i].Q);
      EXPECT_EQ(a.detail.masters[k].streams[i].response,
                b.detail.masters[k].streams[i].response);
      EXPECT_EQ(a.detail.masters[k].streams[i].meets_deadline,
                b.detail.masters[k].streams[i].meets_deadline);
    }
  }
}

TEST(AnalyzeAll, MatchesPerPolicyAnalyze) {
  for (std::uint64_t id = 0; id < 30; ++id) {
    const Scenario sc = make(id, 0.3 + 0.02 * static_cast<double>(id));
    AnalysisEngine per_policy;
    AnalysisEngine batched;
    const std::vector<Report> batch = batched.analyze_all(sc, kAllPolicies);
    ASSERT_EQ(batch.size(), kAllPolicies.size());
    for (std::size_t p = 0; p < kAllPolicies.size(); ++p) {
      const Report individual = per_policy.analyze(sc, kAllPolicies[p]);
      expect_same_report(individual, batch[p]);
    }
  }
}

TEST(AnalyzeAll, BindsTheMemoOnce) {
  const Scenario sc = make(3, 0.5);
  AnalysisEngine engine;
  (void)engine.analyze_all(sc, kAllPolicies);
  EXPECT_EQ(engine.memo_misses(), 1u);
  // Equivalent accounting to the per-policy sequence it replaces: one miss,
  // the rest served from the shared bind.
  EXPECT_EQ(engine.memo_hits(), kAllPolicies.size() - 1);
}

TEST(AnalyzeAll, EmptyPolicyListIsANoOp) {
  const Scenario sc = make(4, 0.5);
  AnalysisEngine engine;
  EXPECT_TRUE(engine.analyze_all(sc, {}).empty());
  EXPECT_EQ(engine.memo_misses(), 0u);
}

TEST(AnalyzeAll, RepeatedBatchesHitTheMemo) {
  const Scenario sc = make(5, 0.6);
  AnalysisEngine engine;
  (void)engine.analyze_all(sc, kAllPolicies);
  (void)engine.analyze_all(sc, kAllPolicies);
  EXPECT_EQ(engine.memo_misses(), 1u);
  EXPECT_EQ(engine.memo_size(), 1u);
}

}  // namespace
}  // namespace profisched::engine
