// Acceptance properties of the parallel simulation sweeps:
//  * sim and combined results are bit-identical for every thread count
//    (aggregate CSV/JSON bytes included);
//  * the analysis-vs-simulation consistency property on 100+ UUniFast
//    scenarios per policy — every analytic WCRT dominates the observed max
//    response (zero per-stream bound violations) and no scenario the
//    analysis accepts ever misses a deadline in simulation;
//  * malformed specs are rejected on the calling thread.
#include <gtest/gtest.h>

#include "engine/sim_aggregate.hpp"
#include "engine/sweep_runner.hpp"

namespace profisched::engine {
namespace {

SimSweepSpec small_spec() {
  SimSweepSpec spec;
  spec.sweep.base.n_masters = 1;
  spec.sweep.base.streams_per_master = 4;
  spec.sweep.base.ttr = 3'000;
  spec.sweep.points = {SweepPoint{0.3, 0.5, 1.0}, SweepPoint{0.7, 0.5, 1.0}};
  spec.sweep.scenarios_per_point = 12;
  spec.sweep.policies = {Policy::Fcfs, Policy::Dm, Policy::Edf};
  spec.sweep.seed = 2027;
  spec.replications = 2;
  spec.sim.horizon_cycles = 25.0;
  return spec;
}

void expect_same_sim_outcomes(const SimSweepResult& a, const SimSweepResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].seed, b.outcomes[i].seed);
    EXPECT_EQ(a.outcomes[i].point, b.outcomes[i].point);
    EXPECT_EQ(a.outcomes[i].horizon, b.outcomes[i].horizon);
    EXPECT_EQ(a.outcomes[i].observed_max, b.outcomes[i].observed_max);
    EXPECT_EQ(a.outcomes[i].observed_p99, b.outcomes[i].observed_p99);
    EXPECT_EQ(a.outcomes[i].released, b.outcomes[i].released);
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].misses, b.outcomes[i].misses);
    EXPECT_EQ(a.outcomes[i].dropped, b.outcomes[i].dropped);
  }
}

TEST(SimSweep, ResultsAreInvariantUnderThreadCount) {
  const SimSweepSpec spec = small_spec();
  SweepRunner one(1);
  SweepRunner four(4);
  SweepRunner seven(7);
  const SimSweepResult r1 = one.run_sim(spec);
  const SimSweepResult r4 = four.run_sim(spec);
  const SimSweepResult r7 = seven.run_sim(spec);
  expect_same_sim_outcomes(r1, r4);
  expect_same_sim_outcomes(r1, r7);
  // And the serialized aggregates are byte-identical.
  const std::string csv = aggregate_sim(spec, r1).to_csv();
  EXPECT_EQ(csv, aggregate_sim(spec, r4).to_csv());
  EXPECT_EQ(csv, aggregate_sim(spec, r7).to_csv());
  EXPECT_EQ(aggregate_sim(spec, r1).to_json(), aggregate_sim(spec, r4).to_json());
}

TEST(SimSweep, CombinedResultsAreInvariantUnderThreadCount) {
  const SimSweepSpec spec = small_spec();
  SweepRunner one(1);
  SweepRunner five(5);
  const CombinedResult r1 = one.run_combined(spec);
  const CombinedResult r5 = five.run_combined(spec);
  ASSERT_EQ(r1.outcomes.size(), r5.outcomes.size());
  for (std::size_t i = 0; i < r1.outcomes.size(); ++i) {
    EXPECT_EQ(r1.outcomes[i].analytic_schedulable, r5.outcomes[i].analytic_schedulable);
    EXPECT_EQ(r1.outcomes[i].analytic_wcrt, r5.outcomes[i].analytic_wcrt);
    EXPECT_EQ(r1.outcomes[i].bound_violations, r5.outcomes[i].bound_violations);
    EXPECT_EQ(r1.outcomes[i].sim.observed_max, r5.outcomes[i].sim.observed_max);
    EXPECT_EQ(r1.outcomes[i].sim.misses, r5.outcomes[i].sim.misses);
  }
  EXPECT_EQ(consistency_table(spec, r1).to_csv(), consistency_table(spec, r5).to_csv());
  EXPECT_EQ(consistency_table(spec, r1).to_json(), consistency_table(spec, r5).to_json());
}

TEST(SimSweep, RepeatedRunsAreIdentical) {
  const SimSweepSpec spec = small_spec();
  SweepRunner runner(2);
  expect_same_sim_outcomes(runner.run_sim(spec), runner.run_sim(spec));
}

TEST(SimSweep, ReplicationsAddObservationsNotNoise) {
  SimSweepSpec one_rep = small_spec();
  one_rep.replications = 1;
  SimSweepSpec two_reps = small_spec();
  two_reps.replications = 2;
  SweepRunner runner(2);
  const SimSweepResult r1 = runner.run_sim(one_rep);
  const SimSweepResult r2 = runner.run_sim(two_reps);
  ASSERT_EQ(r1.outcomes.size(), r2.outcomes.size());
  for (std::size_t i = 0; i < r1.outcomes.size(); ++i) {
    for (std::size_t p = 0; p < r1.outcomes[i].observed_max.size(); ++p) {
      // Rep 0 is shared, so two reps can only widen the observed envelope
      // and add released/completed counts.
      EXPECT_GE(r2.outcomes[i].observed_max[p], r1.outcomes[i].observed_max[p]);
      EXPECT_GE(r2.outcomes[i].released[p], r1.outcomes[i].released[p]);
    }
  }
}

// The headline consistency suite: >= 100 UUniFast scenarios per policy, every
// analytic bound must dominate the observed behaviour. Any violation here
// falsifies the corresponding analysis (or the simulator's conformance).
TEST(SimSweep, AnalysisDominatesSimulationOn100PlusScenariosPerPolicy) {
  SimSweepSpec spec;
  spec.sweep.base.n_masters = 1;
  spec.sweep.base.streams_per_master = 5;
  spec.sweep.base.ttr = 3'000;
  spec.sweep.points = {SweepPoint{0.2, 0.5, 1.0}, SweepPoint{0.5, 0.5, 1.0},
                       SweepPoint{0.8, 0.5, 1.0}, SweepPoint{1.1, 0.4, 1.0}};
  spec.sweep.scenarios_per_point = 30;  // 120 scenarios per policy
  spec.sweep.policies = {Policy::Fcfs, Policy::Dm, Policy::Edf};
  spec.sweep.seed = 99;
  spec.replications = 2;  // synchronous + randomly phased
  spec.sim.horizon_cycles = 40.0;

  SweepRunner runner;
  const CombinedResult result = runner.run_combined(spec);
  ASSERT_EQ(result.outcomes.size(), 120u);

  EXPECT_EQ(result.total_bound_violations(), 0u);
  EXPECT_EQ(result.accept_but_miss_count(), 0u);

  const ConsistencyTable table = consistency_table(spec, result);
  ASSERT_EQ(table.rows.size(), 360u);
  EXPECT_EQ(table.accept_but_miss_count(), 0u);
  EXPECT_EQ(table.total_bound_violations(), 0u);
  std::size_t observed_something = 0;
  for (const ConsistencyRow& r : table.rows) {
    EXPECT_FALSE(r.accept_but_miss) << "scenario " << r.id << " policy " << r.policy;
    EXPECT_EQ(r.bound_violations, 0u) << "scenario " << r.id << " policy " << r.policy;
    if (r.analytic_wcrt != kNoBound) {
      EXPECT_GE(r.analytic_wcrt, r.observed_max)
          << "scenario " << r.id << " policy " << r.policy;
      if (r.observed_max > 0) {
        EXPECT_GE(r.pessimism(), 1.0);
        ++observed_something;
      }
    }
    EXPECT_LE(r.observed_p99, r.observed_max);
  }
  // The property must not pass vacuously.
  EXPECT_GT(observed_something, 100u);
}

TEST(SimSweep, FrameLevelDropsSurfaceInOutcomesAndCurves) {
  // Regression: dropped (never-completed) cycles must not read as miss-free.
  // FrameLevel with a high per-attempt slave failure probability guarantees
  // some cycles exhaust their retries.
  SimSweepSpec spec = small_spec();
  spec.sweep.policies = {Policy::Fcfs};
  spec.replications = 1;
  spec.sim.cycle_model.kind = sim::CycleModel::Kind::FrameLevel;
  spec.sim.cycle_model.slave_fail_prob = 0.6;
  SweepRunner runner(2);
  const SimSweepResult result = runner.run_sim(spec);

  std::uint64_t total_dropped = 0;
  for (const SimScenarioOutcome& o : result.outcomes) {
    ASSERT_EQ(o.dropped.size(), 1u);
    total_dropped += o.dropped[0];
  }
  EXPECT_GT(total_dropped, 0u);

  const SimCurves curves = aggregate_sim(spec, result);
  std::uint64_t curve_dropped = 0;
  std::size_t miss_free = 0, scenarios = 0;
  for (const SimCurvePoint& pt : curves.points) {
    curve_dropped += pt.total_dropped[0];
    miss_free += pt.miss_free[0];
    scenarios += pt.scenarios;
  }
  EXPECT_EQ(curve_dropped, total_dropped);
  // With 60% per-attempt failure nearly every scenario drops something, so
  // the miss-free count must fall below the scenario count.
  EXPECT_LT(miss_free, scenarios);
}

TEST(SimSweep, UniformCycleModelKeepsBoundsDominant) {
  // Shorter-than-worst-case cycle durations: still bounded by the analysis.
  SimSweepSpec spec = small_spec();
  spec.sim.cycle_model.kind = sim::CycleModel::Kind::UniformFraction;
  spec.sim.cycle_model.min_fraction = 0.4;
  SweepRunner runner(3);
  const CombinedResult result = runner.run_combined(spec);
  EXPECT_EQ(result.total_bound_violations(), 0u);
  EXPECT_EQ(result.accept_but_miss_count(), 0u);
}

TEST(SimSweep, RejectsBadSpecs) {
  SweepRunner runner(1);
  SimSweepSpec no_policies = small_spec();
  no_policies.sweep.policies.clear();
  EXPECT_THROW((void)runner.run_sim(no_policies), std::invalid_argument);
  EXPECT_THROW((void)runner.run_combined(no_policies), std::invalid_argument);

  SimSweepSpec no_reps = small_spec();
  no_reps.replications = 0;
  EXPECT_THROW((void)runner.run_sim(no_reps), std::invalid_argument);

  SimSweepSpec no_points = small_spec();
  no_points.sweep.points.clear();
  EXPECT_THROW((void)runner.run_sim(no_points), std::invalid_argument);

  SimSweepSpec analysis_only = small_spec();
  analysis_only.sweep.policies = {Policy::Fcfs, Policy::TokenRing};
  EXPECT_THROW((void)runner.run_sim(analysis_only), std::invalid_argument);
  EXPECT_THROW((void)runner.run_combined(analysis_only), std::invalid_argument);
}

TEST(SimSweep, WorkerExceptionsSurfaceOnTheCallingThread) {
  // UUniFast mode without an explicit T_TR is rejected inside a worker; the
  // error must reach the caller, not std::terminate the process.
  SimSweepSpec spec = small_spec();
  spec.sweep.base.ttr = 0;
  SweepRunner runner(3);
  EXPECT_THROW((void)runner.run_sim(spec), std::invalid_argument);
  EXPECT_THROW((void)runner.run_combined(spec), std::invalid_argument);
}

}  // namespace
}  // namespace profisched::engine
