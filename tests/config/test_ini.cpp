// Unit tests for the INI reader.
#include "config/ini.hpp"

#include <gtest/gtest.h>

namespace profisched::config {
namespace {

TEST(Ini, ParsesSectionsAndEntriesInOrder) {
  const IniFile f = parse_ini("[a]\nx = 1\ny = two\n[b]\nz = 3\n");
  ASSERT_EQ(f.sections.size(), 2u);
  EXPECT_EQ(f.sections[0].name, "a");
  ASSERT_EQ(f.sections[0].entries.size(), 2u);
  EXPECT_EQ(f.sections[0].entries[0].key, "x");
  EXPECT_EQ(f.sections[0].entries[1].value, "two");
  EXPECT_EQ(f.sections[1].name, "b");
}

TEST(Ini, RepeatedSectionsPreserved) {
  const IniFile f = parse_ini("[s]\nk = 1\n[s]\nk = 2\n");
  ASSERT_EQ(f.sections.size(), 2u);
  EXPECT_EQ(*f.sections[0].get_ticks("k"), 1);
  EXPECT_EQ(*f.sections[1].get_ticks("k"), 2);
}

TEST(Ini, CommentsAndBlankLinesIgnored) {
  const IniFile f = parse_ini("# header\n\n[s]  ; trailing\nk = 5 # inline\n; full line\n");
  ASSERT_EQ(f.sections.size(), 1u);
  EXPECT_EQ(*f.sections[0].get_ticks("k"), 5);
}

TEST(Ini, WhitespaceTrimmed) {
  const IniFile f = parse_ini("[ s ]\n  key   =   value with spaces  \n");
  EXPECT_EQ(f.sections[0].name, "s");
  EXPECT_EQ(*f.sections[0].get("key"), "value with spaces");
}

TEST(Ini, ErrorsCarryLineNumbers) {
  try {
    (void)parse_ini("[ok]\nk = 1\nbroken-line\n");
    FAIL() << "expected IniError";
  } catch (const IniError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Ini, RejectsEntryBeforeSection) {
  EXPECT_THROW((void)parse_ini("k = 1\n"), IniError);
}

TEST(Ini, RejectsMalformedHeader) {
  EXPECT_THROW((void)parse_ini("[oops\n"), IniError);
  EXPECT_THROW((void)parse_ini("[]\n"), IniError);
}

TEST(Ini, TypedAccessors) {
  const IniFile f = parse_ini("[s]\nint = 42\nneg = -7\nflt = 2.5\nbad = 4x\n");
  const IniSection& s = f.sections[0];
  EXPECT_EQ(*s.get_ticks("int"), 42);
  EXPECT_EQ(*s.get_ticks("neg"), -7);
  EXPECT_DOUBLE_EQ(*s.get_double("flt"), 2.5);
  EXPECT_FALSE(s.get_ticks("missing").has_value());
  EXPECT_THROW((void)s.get_ticks("bad"), IniError);
  EXPECT_THROW((void)s.get_ticks("flt"), IniError);
}

TEST(Ini, RequireThrowsWithSectionName) {
  const IniFile f = parse_ini("[network]\n");
  try {
    (void)f.sections[0].require("ttr");
    FAIL() << "expected IniError";
  } catch (const IniError& e) {
    EXPECT_NE(std::string(e.what()).find("network"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ttr"), std::string::npos);
  }
}

TEST(Ini, FindReturnsFirstMatch) {
  const IniFile f = parse_ini("[a]\nk=1\n[b]\n[a]\nk=2\n");
  ASSERT_NE(f.find("a"), nullptr);
  EXPECT_EQ(*f.find("a")->get_ticks("k"), 1);
  EXPECT_EQ(f.find("zzz"), nullptr);
}

TEST(Ini, HandlesMissingTrailingNewline) {
  const IniFile f = parse_ini("[s]\nk = 9");
  EXPECT_EQ(*f.sections[0].get_ticks("k"), 9);
}

}  // namespace
}  // namespace profisched::config
