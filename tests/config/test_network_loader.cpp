// Unit tests for the network loader (INI → profibus::Network).
#include "config/network_loader.hpp"

#include <gtest/gtest.h>

#include "profibus/dispatching.hpp"
#include "profibus/ttr_setting.hpp"

namespace profisched::config {
namespace {

constexpr const char* kMinimal = R"(
[network]
ttr = 5000

[master]
name = plc

[stream]
name = sensor
request_chars = 10
response_chars = 14
period_ms = 50
deadline_ms = 25
)";

TEST(NetworkLoader, MinimalNetwork) {
  const LoadedNetwork ln = load_network(parse_ini(kMinimal));
  EXPECT_EQ(ln.net.n_masters(), 1u);
  EXPECT_EQ(ln.net.masters[0].name, "plc");
  ASSERT_EQ(ln.net.masters[0].nh(), 1u);
  const auto& s = ln.net.masters[0].high_streams[0];
  EXPECT_EQ(s.name, "sensor");
  EXPECT_EQ(s.T, 25'000);  // 50 ms at the default 500 ticks/ms
  EXPECT_EQ(s.D, 12'500);
  EXPECT_EQ(s.Ch, profibus::worst_case_cycle_time(ln.net.bus,
                                                  profibus::MessageCycleSpec{10, 14}));
  EXPECT_EQ(ln.net.ttr, 5'000);
  EXPECT_FALSE(ln.ttr_auto);
  ASSERT_EQ(ln.specs.size(), 1u);
  ASSERT_EQ(ln.specs[0].size(), 1u);
}

TEST(NetworkLoader, TicksAndMsAreExclusive) {
  const std::string both = std::string(kMinimal) + "\n[stream]\nname=x\nrequest_chars=8\n"
                                                   "response_chars=8\nperiod=100\nperiod_ms=5\n"
                                                   "deadline_ms=5\n";
  EXPECT_THROW((void)load_network(parse_ini(both)), IniError);

  const std::string neither = std::string(kMinimal) + "\n[stream]\nname=x\nrequest_chars=8\n"
                                                      "response_chars=8\ndeadline_ms=5\n";
  EXPECT_THROW((void)load_network(parse_ini(neither)), IniError);
}

TEST(NetworkLoader, AutoTtrUsesEq15) {
  const std::string auto_ttr = R"(
[network]
ttr = auto

[master]
name = plc

[stream]
name = s
request_chars = 10
response_chars = 14
period_ms = 100
deadline_ms = 60
)";
  const LoadedNetwork ln = load_network(parse_ini(auto_ttr));
  EXPECT_TRUE(ln.ttr_auto);
  const auto best = profibus::max_schedulable_ttr(ln.net);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(ln.net.ttr, *best);
  EXPECT_TRUE(analyze_network(ln.net, profibus::ApPolicy::Fcfs).schedulable);
}

TEST(NetworkLoader, BusOverridesApply) {
  const std::string with_bus = std::string("[bus]\nmax_retry = 3\nt_sl = 200\n") + kMinimal;
  const LoadedNetwork ln = load_network(parse_ini(with_bus));
  EXPECT_EQ(ln.net.bus.max_retry, 3);
  EXPECT_EQ(ln.net.bus.t_sl, 200);
  // Ch reflects the retry count: 3 extra (request + t_sl) attempts.
  EXPECT_GT(ln.net.masters[0].high_streams[0].Ch,
            profibus::worst_case_cycle_time(profibus::BusParameters{},
                                            profibus::MessageCycleSpec{10, 14}));
}

TEST(NetworkLoader, LowPriorityCycleDerivedFromChars) {
  const std::string with_lp = R"(
[network]
ttr = 5000

[master]
name = plc
low_request_chars = 30
low_response_chars = 30

[stream]
name = s
request_chars = 8
response_chars = 8
period_ms = 50
deadline_ms = 40
)";
  const LoadedNetwork ln = load_network(parse_ini(with_lp));
  EXPECT_EQ(ln.net.masters[0].longest_low_cycle,
            profibus::worst_case_cycle_time(ln.net.bus, profibus::MessageCycleSpec{30, 30}));
}

TEST(NetworkLoader, LpCharsMustComeInPairs) {
  const std::string bad = R"(
[network]
ttr = 5000
[master]
low_request_chars = 30
[stream]
name = s
request_chars = 8
response_chars = 8
period_ms = 50
deadline_ms = 40
)";
  EXPECT_THROW((void)load_network(parse_ini(bad)), IniError);
}

TEST(NetworkLoader, StreamBeforeMasterRejected) {
  EXPECT_THROW((void)load_network(parse_ini("[network]\nttr=1\n[stream]\nname=s\n"
                                            "request_chars=8\nresponse_chars=8\n"
                                            "period=10\ndeadline=10\n")),
               IniError);
}

TEST(NetworkLoader, MissingNetworkSectionRejected) {
  EXPECT_THROW((void)load_network(parse_ini("[master]\nname=m\n")), std::invalid_argument);
}

TEST(NetworkLoader, ShippedConfigsLoadAndMatchScenarios) {
  // The repo's example configs must stay loadable and semantically intact.
  const LoadedNetwork cell = load_network_file("configs/factory_cell.ini");
  EXPECT_EQ(cell.net.n_masters(), 3u);
  EXPECT_EQ(cell.net.total_high_streams(), 9u);
  EXPECT_TRUE(analyze_network(cell.net, profibus::ApPolicy::Dm).schedulable);

  const LoadedNetwork mix = load_network_file("configs/tight_deadline_mix.ini");
  EXPECT_FALSE(analyze_network(mix.net, profibus::ApPolicy::Fcfs).schedulable);
  EXPECT_TRUE(analyze_network(mix.net, profibus::ApPolicy::Dm).schedulable);
}

}  // namespace
}  // namespace profisched::config
