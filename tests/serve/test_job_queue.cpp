// JobQueue semantics: priority-then-FIFO claiming, two-sided cancellation
// (queued jobs flip immediately, running jobs get a flag), shutdown draining,
// and the scenarios-completed accounting STATS reports.
#include "serve/job_queue.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace profisched::serve {
namespace {

Request job_with(std::uint64_t priority, std::uint64_t scenarios_per_point = 4) {
  Request req;
  req.kind = Request::Kind::Submit;
  req.priority = priority;
  req.spec.mode = dist::SweepMode::Analysis;
  req.spec.spec.sweep.points = {engine::SweepPoint{0.5, 0.5, 1.0}};
  req.spec.spec.sweep.scenarios_per_point = scenarios_per_point;
  req.spec.spec.sweep.policies = {engine::Policy::Fcfs};
  return req;
}

TEST(JobQueue, ClaimsByPriorityThenSubmissionOrder) {
  JobQueue q;
  const std::uint64_t low = q.submit(job_with(1));
  const std::uint64_t high = q.submit(job_with(9));
  const std::uint64_t low2 = q.submit(job_with(1));
  ASSERT_EQ(q.claim_next()->id, high);
  ASSERT_EQ(q.claim_next()->id, low);  // FIFO within equal priority
  ASSERT_EQ(q.claim_next()->id, low2);
}

TEST(JobQueue, CancelQueuedIsImmediateCancelRunningRaisesTheFlag) {
  JobQueue q;
  const std::uint64_t running = q.submit(job_with(5));
  const std::uint64_t queued = q.submit(job_with(1));
  const auto claimed = q.claim_next();
  ASSERT_EQ(claimed->id, running);

  std::string error;
  EXPECT_TRUE(q.cancel(queued, error));
  EXPECT_EQ(q.info(queued)->state, JobState::Cancelled);

  EXPECT_FALSE(claimed->cancelled->load());
  EXPECT_TRUE(q.cancel(running, error));
  EXPECT_TRUE(claimed->cancelled->load());  // cooperative: state still Running
  EXPECT_EQ(q.info(running)->state, JobState::Running);
  q.complete(running, JobState::Cancelled, "cancelled at range boundary 1/4");
  EXPECT_EQ(q.info(running)->state, JobState::Cancelled);
}

TEST(JobQueue, CancelRejectsUnknownAndTerminalJobs) {
  JobQueue q;
  std::string error;
  EXPECT_FALSE(q.cancel(77, error));
  EXPECT_NE(error.find("unknown job 77"), std::string::npos);

  const std::uint64_t id = q.submit(job_with(0));
  (void)q.claim_next();
  q.complete(id, JobState::Done, "ok");
  EXPECT_FALSE(q.cancel(id, error));
  EXPECT_NE(error.find("already done"), std::string::npos);
}

TEST(JobQueue, CloseCancelsQueuedJobsAndUnblocksTheScheduler) {
  JobQueue q;
  const std::uint64_t queued = q.submit(job_with(3));

  // A scheduler blocked in claim_next() must wake and drain on close().
  std::thread scheduler([&] {
    while (auto claimed = q.claim_next()) {
      q.complete(claimed->id, JobState::Cancelled, "cancelled by shutdown");
    }
  });
  // The single queued job is claimed by the scheduler or cancelled by close —
  // either way the scheduler must exit and the job must end Cancelled.
  q.close();
  scheduler.join();
  EXPECT_EQ(q.info(queued)->state, JobState::Cancelled);
  EXPECT_TRUE(q.closed());
}

TEST(JobQueue, ScenariosCompletedCountsOnlyDoneJobs) {
  JobQueue q;
  const std::uint64_t done = q.submit(job_with(0, 6));
  const std::uint64_t failed = q.submit(job_with(0, 100));
  (void)q.claim_next();
  q.complete(done, JobState::Done, "ok");
  (void)q.claim_next();
  q.complete(failed, JobState::Failed, "boom");
  EXPECT_EQ(q.scenarios_completed(), 6u);  // 1 point x 6 x 1 policy
}

TEST(JobQueue, SnapshotShowsTheFullLifecycleInIdOrder) {
  JobQueue q;
  (void)q.submit(job_with(2));
  (void)q.submit(job_with(8));
  const auto claimed = q.claim_next();
  ASSERT_EQ(claimed->id, 2u);
  const std::vector<JobInfo> rows = q.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].id, 1u);
  EXPECT_EQ(rows[0].state, JobState::Queued);
  EXPECT_EQ(rows[1].id, 2u);
  EXPECT_EQ(rows[1].state, JobState::Running);
  EXPECT_EQ(rows[1].priority, 8u);
}

}  // namespace
}  // namespace profisched::serve
