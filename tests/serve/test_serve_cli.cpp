// Argument parsing for `profisched serve` / `profisched submit`: required
// flags, the shard-style delegation to the shared sweep/optimize parsers
// (what keeps a submitted job's spec byte-identical to the batch
// subcommand's), serve-side flag rejection, and control-action exclusivity.
#include "serve/serve_cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace profisched::serve {
namespace {

ServeCli parse_serve_ok(const std::vector<std::string>& args) {
  ServeCli cli;
  std::string error;
  EXPECT_TRUE(parse_serve_args(args, cli, error)) << error;
  return cli;
}

std::string parse_serve_fail(const std::vector<std::string>& args) {
  ServeCli cli;
  std::string error;
  EXPECT_FALSE(parse_serve_args(args, cli, error));
  EXPECT_FALSE(error.empty());
  return error;
}

SubmitCli parse_submit_ok(const std::vector<std::string>& args) {
  SubmitCli cli;
  std::string error;
  EXPECT_TRUE(parse_submit_args(args, cli, error)) << error;
  return cli;
}

std::string parse_submit_fail(const std::vector<std::string>& args) {
  SubmitCli cli;
  std::string error;
  EXPECT_FALSE(parse_submit_args(args, cli, error));
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(ServeCliParse, AcceptsTheFullFlagSet) {
  const ServeCli cli = parse_serve_ok(
      {"--socket", "/tmp/s.sock", "--threads", "4", "--cache", "/tmp", "--metrics", "/tmp/m.json"});
  EXPECT_EQ(cli.socket_path, "/tmp/s.sock");
  EXPECT_EQ(cli.threads, 4u);
  EXPECT_EQ(cli.cache_dir, "/tmp");
  EXPECT_EQ(cli.metrics_path, "/tmp/m.json");
}

TEST(ServeCliParse, RejectsBadInvocations) {
  EXPECT_NE(parse_serve_fail({}).find("--socket PATH is required"), std::string::npos);
  EXPECT_NE(parse_serve_fail({"--socket"}).find("--socket needs a path"), std::string::npos);
  EXPECT_NE(parse_serve_fail({"--socket", "/tmp/s.sock", "--threads", "0"}).find("--threads"),
            std::string::npos);
  EXPECT_NE(parse_serve_fail({"--socket", "/tmp/s.sock", "--frob"}).find("unknown serve flag"),
            std::string::npos);
  // Destination validation is up-front and names the flag.
  EXPECT_NE(parse_serve_fail({"--socket", "/nonexistent_profisched/s.sock"}).find("--socket"),
            std::string::npos);
  EXPECT_NE(parse_serve_fail({"--socket", "/tmp/s.sock", "--cache", "/dev/null/c"})
                .find("--cache"),
            std::string::npos);
  EXPECT_NE(parse_serve_fail({"--socket", "/tmp/s.sock", "--metrics", "/nonexistent_p/m.json"})
                .find("--metrics"),
            std::string::npos);
}

TEST(SubmitCliParse, BuildsAJobThroughTheDelegatedSweepParser) {
  const SubmitCli cli = parse_submit_ok(
      {"--socket", "/tmp/s.sock", "--mode", "combined", "--priority", "5", "--oversplit", "8",
       "--wait", "--scenarios", "12", "--u", "0.3:0.7:2", "--seed", "42", "--reps", "3",
       "--csv", "/tmp/out.csv", "--json", "/tmp/out.json", "--metrics", "/tmp/m.json",
       "--progress"});
  EXPECT_EQ(cli.action, SubmitCli::Action::Submit);
  EXPECT_TRUE(cli.wait);
  EXPECT_EQ(cli.job.spec.mode, dist::SweepMode::Combined);
  EXPECT_EQ(cli.job.priority, 5u);
  EXPECT_EQ(cli.job.oversplit, 8u);
  EXPECT_EQ(cli.job.spec.spec.sweep.scenarios_per_point, 12u);
  EXPECT_EQ(cli.job.spec.spec.sweep.seed, 42u);
  EXPECT_EQ(cli.job.spec.spec.replications, 3u);
  EXPECT_EQ(cli.job.csv_path, "/tmp/out.csv");
  EXPECT_EQ(cli.job.json_path, "/tmp/out.json");
  EXPECT_EQ(cli.job.metrics_path, "/tmp/m.json");
  EXPECT_TRUE(cli.job.progress);
}

TEST(SubmitCliParse, OptimizeModeUsesTheOptimizeFlagTable) {
  const SubmitCli cli = parse_submit_ok({"--socket", "/tmp/s.sock", "--mode", "optimize",
                                         "--scenarios", "4", "--ttr-cap", "9000", "--method",
                                         "refined"});
  EXPECT_EQ(cli.job.spec.mode, dist::SweepMode::Optimize);
  EXPECT_EQ(cli.job.spec.optimize.ttr_cap, 9'000);
  EXPECT_EQ(cli.job.spec.spec.sweep.engine.method, profibus::TcycleMethod::PerMasterRefined);
  // The bracket flags belong to optimize mode only.
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--ttr-cap", "9000"}).find("ttr-cap"),
            std::string::npos);
}

TEST(SubmitCliParse, RejectsServeSideAndMisplacedFlags) {
  EXPECT_NE(parse_submit_fail({"--scenarios", "4"}).find("--socket PATH is required"),
            std::string::npos);
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--threads", "4"})
                .find("serve-side"),
            std::string::npos);
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--cache", "/tmp"})
                .find("serve-side"),
            std::string::npos);
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--combined"})
                .find("--mode combined"),
            std::string::npos);
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--mode", "warp"}).find("--mode"),
            std::string::npos);
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--oversplit", "0"})
                .find("--oversplit"),
            std::string::npos);
}

TEST(SubmitCliParse, ControlActionsAreExclusiveAndBare) {
  const SubmitCli status = parse_submit_ok({"--socket", "/tmp/s.sock", "--status"});
  EXPECT_EQ(status.action, SubmitCli::Action::Status);
  const SubmitCli cancel = parse_submit_ok({"--socket", "/tmp/s.sock", "--cancel", "7"});
  EXPECT_EQ(cancel.action, SubmitCli::Action::Cancel);
  EXPECT_EQ(cancel.cancel_id, 7u);
  EXPECT_EQ(parse_submit_ok({"--socket", "/tmp/s.sock", "--stats"}).action,
            SubmitCli::Action::Stats);
  EXPECT_EQ(parse_submit_ok({"--socket", "/tmp/s.sock", "--shutdown"}).action,
            SubmitCli::Action::Shutdown);

  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--status", "--stats"})
                .find("mutually exclusive"),
            std::string::npos);
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--status", "--scenarios", "4"})
                .find("no sweep flags"),
            std::string::npos);
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--shutdown", "--wait"})
                .find("--wait"),
            std::string::npos);
  EXPECT_NE(parse_submit_fail({"--socket", "/tmp/s.sock", "--cancel", "0"}).find("--cancel"),
            std::string::npos);
}

}  // namespace
}  // namespace profisched::serve
