// The serve wire protocol's totality contract: the frame decoder must answer
// Ok / NeedMore / Error for EVERY byte sequence — truncated, oversized, or
// junk — without crashing or waiting forever, and parse_request must either
// return a request or throw a diagnostic std::invalid_argument. The fuzz-ish
// sweeps below are deterministic (xorshift-seeded) so a failure reproduces.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

namespace profisched::serve {
namespace {

dist::ShardSpec small_spec(dist::SweepMode mode) {
  dist::ShardSpec sh;
  sh.mode = mode;
  sh.spec.sweep.base.n_masters = 2;
  sh.spec.sweep.base.streams_per_master = 3;
  sh.spec.sweep.base.ttr = 3'000;
  sh.spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  sh.spec.sweep.scenarios_per_point = 6;
  sh.spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  sh.spec.sweep.seed = 99;
  sh.spec.replications = 2;
  return sh;
}

TEST(ServeFrame, RoundTripsPayloadsIncludingBinaryAndEmpty) {
  for (const std::string payload :
       {std::string(), std::string("status"), std::string("a\nb\nc\n"),
        std::string("\x00\x01\xff\n\x7f", 5), std::string(100'000, 'x')}) {
    const std::string wire = encode_frame(payload);
    const FrameDecode d = decode_frame(wire);
    ASSERT_EQ(d.status, FrameDecode::Status::Ok) << d.error;
    EXPECT_EQ(d.payload, payload);
    EXPECT_EQ(d.consumed, wire.size());
  }
}

TEST(ServeFrame, DecodesIncrementallyOneByteAtATime) {
  const std::string wire = encode_frame("submit sweep 0 1\nspec\n...");
  std::string buffer;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer += wire[i];
    EXPECT_EQ(decode_frame(buffer).status, FrameDecode::Status::NeedMore) << "at byte " << i;
  }
  buffer += wire.back();
  const FrameDecode d = decode_frame(buffer);
  ASSERT_EQ(d.status, FrameDecode::Status::Ok);
  EXPECT_EQ(d.payload, "submit sweep 0 1\nspec\n...");
}

TEST(ServeFrame, ConsumesExactlyOneFrameLeavingTheRest) {
  const std::string wire = encode_frame("first") + encode_frame("second");
  const FrameDecode d1 = decode_frame(wire);
  ASSERT_EQ(d1.status, FrameDecode::Status::Ok);
  EXPECT_EQ(d1.payload, "first");
  const FrameDecode d2 = decode_frame(std::string_view(wire).substr(d1.consumed));
  ASSERT_EQ(d2.status, FrameDecode::Status::Ok);
  EXPECT_EQ(d2.payload, "second");
}

TEST(ServeFrame, RejectsOversizedJunkAndMalformedPrefixes) {
  // A declared length above the cap is an error even before the bytes arrive.
  EXPECT_EQ(decode_frame("99999999999\n").status, FrameDecode::Status::Error);
  EXPECT_EQ(decode_frame(std::to_string(kMaxFrameBytes + 1) + "\n").status,
            FrameDecode::Status::Error);
  // Non-digit prefixes error as soon as the offending byte is visible — with
  // or without a newline in the buffer yet.
  EXPECT_EQ(decode_frame("12a4\n").status, FrameDecode::Status::Error);
  EXPECT_EQ(decode_frame("hello").status, FrameDecode::Status::Error);
  EXPECT_EQ(decode_frame("\n").status, FrameDecode::Status::Error);
  EXPECT_EQ(decode_frame("-5\n").status, FrameDecode::Status::Error);
  // A digits-only run longer than any admissible prefix can never become a
  // frame: error now rather than NeedMore forever.
  EXPECT_EQ(decode_frame("123456789012345").status, FrameDecode::Status::Error);
  // Plausible prefixes wait for more bytes.
  EXPECT_EQ(decode_frame("").status, FrameDecode::Status::NeedMore);
  EXPECT_EQ(decode_frame("123").status, FrameDecode::Status::NeedMore);
  EXPECT_EQ(decode_frame("5\nabc").status, FrameDecode::Status::NeedMore);
}

TEST(ServeFrame, EncoderRefusesWhatTheDecoderRejects) {
  EXPECT_THROW((void)encode_frame(std::string(kMaxFrameBytes + 1, 'x')),
               std::invalid_argument);
}

// Deterministic fuzz: random buffers must always produce a verdict, and a
// valid frame prefixed by its own bytes must still decode from the front.
TEST(ServeFrame, FuzzedBuffersAlwaysGetAVerdict) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 500; ++round) {
    std::string buffer;
    const std::size_t len = next() % 64;
    for (std::size_t i = 0; i < len; ++i) {
      buffer += static_cast<char>(next() % 256);
    }
    const FrameDecode d = decode_frame(buffer);  // must not crash
    if (d.status == FrameDecode::Status::Ok) {
      EXPECT_LE(d.consumed, buffer.size());
      EXPECT_EQ(encode_frame(d.payload), buffer.substr(0, d.consumed));
    }
  }
}

TEST(ServeFrame, FuzzedTruncationsOfAValidFrameNeverError) {
  const std::string wire = encode_frame(format_submit([] {
    Request req;
    req.kind = Request::Kind::Submit;
    req.spec = small_spec(dist::SweepMode::Combined);
    return req;
  }()));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const FrameDecode d = decode_frame(std::string_view(wire).substr(0, cut));
    EXPECT_EQ(d.status, FrameDecode::Status::NeedMore) << "truncated at " << cut;
  }
}

TEST(ServeRequest, SubmitRoundTripsEveryModeAndOption) {
  for (const dist::SweepMode mode :
       {dist::SweepMode::Analysis, dist::SweepMode::Sim, dist::SweepMode::Combined,
        dist::SweepMode::Optimize}) {
    Request req;
    req.kind = Request::Kind::Submit;
    req.spec = small_spec(mode);
    req.priority = 7;
    req.oversplit = 3;
    req.csv_path = "/tmp/out.csv";
    req.json_path = "/tmp/out.json";
    req.metrics_path = "/tmp/out-metrics.json";
    req.progress = true;

    const Request back = parse_request(format_submit(req));
    EXPECT_EQ(back.kind, Request::Kind::Submit);
    EXPECT_EQ(back.spec.mode, mode);
    EXPECT_EQ(dist::serialize_spec(back.spec), dist::serialize_spec(req.spec));
    EXPECT_EQ(back.priority, 7u);
    EXPECT_EQ(back.oversplit, 3u);
    EXPECT_EQ(back.csv_path, req.csv_path);
    EXPECT_EQ(back.json_path, req.json_path);
    EXPECT_EQ(back.metrics_path, req.metrics_path);
    EXPECT_TRUE(back.progress);
  }
}

TEST(ServeRequest, ControlVerbsRoundTrip) {
  EXPECT_EQ(parse_request(format_status()).kind, Request::Kind::Status);
  EXPECT_EQ(parse_request(format_stats()).kind, Request::Kind::Stats);
  EXPECT_EQ(parse_request(format_shutdown()).kind, Request::Kind::Shutdown);
  const Request cancel = parse_request(format_cancel(42));
  EXPECT_EQ(cancel.kind, Request::Kind::Cancel);
  EXPECT_EQ(cancel.cancel_id, 42u);
}

TEST(ServeRequest, MalformedRequestsThrowDiagnostics) {
  const std::string spec_block = dist::serialize_spec(small_spec(dist::SweepMode::Analysis));
  EXPECT_THROW((void)parse_request(""), std::invalid_argument);
  EXPECT_THROW((void)parse_request("frobnicate"), std::invalid_argument);
  EXPECT_THROW((void)parse_request("status now"), std::invalid_argument);
  EXPECT_THROW((void)parse_request("status\ntrailing"), std::invalid_argument);
  EXPECT_THROW((void)parse_request("cancel"), std::invalid_argument);
  EXPECT_THROW((void)parse_request("cancel one"), std::invalid_argument);
  EXPECT_THROW((void)parse_request("submit sweep 0 1"), std::invalid_argument);  // no spec
  EXPECT_THROW((void)parse_request("submit warp 0 1\nspec\n" + spec_block),
               std::invalid_argument);  // bad mode
  EXPECT_THROW((void)parse_request("submit sweep -1 1\nspec\n" + spec_block),
               std::invalid_argument);  // bad priority
  EXPECT_THROW((void)parse_request("submit sweep 0 0\nspec\n" + spec_block),
               std::invalid_argument);  // oversplit of zero
  EXPECT_THROW((void)parse_request("submit sweep 0 1\nteleport there\nspec\n" + spec_block),
               std::invalid_argument);  // unknown option line
  EXPECT_THROW((void)parse_request("submit simulate 0 1\nspec\n" + spec_block),
               std::invalid_argument);  // header mode != spec block mode
  EXPECT_THROW((void)parse_request("submit sweep 0 1\nspec\n" + spec_block + "extra\n"),
               std::invalid_argument);  // trailing bytes after the spec
  EXPECT_THROW((void)parse_request("submit sweep 0 1\nspec\ngarbage"),
               std::invalid_argument);  // unparseable spec
}

}  // namespace
}  // namespace profisched::serve
