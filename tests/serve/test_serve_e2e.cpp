// The serve tentpole's must-keep invariant, in-process: a job submitted over
// the socket produces output FILES byte-identical to the batch pipeline's
// serialization, for all four modes and for oversplit K ∈ {1, 3}. Plus the
// daemon's control surface: STATUS rows, CANCEL semantics over the wire,
// STATS manifests that obs::parse_manifest accepts, submit-time destination
// validation, and a clean SHUTDOWN that drains the queue.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/aggregate.hpp"
#include "engine/sim_aggregate.hpp"
#include "opt/opt_aggregate.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace profisched::serve {
namespace {

namespace fs = std::filesystem;

dist::ShardSpec small_spec(dist::SweepMode mode) {
  dist::ShardSpec sh;
  sh.mode = mode;
  sh.spec.sweep.base.n_masters = 2;
  sh.spec.sweep.base.streams_per_master = 3;
  sh.spec.sweep.base.ttr = 3'000;
  sh.spec.sweep.points = {engine::SweepPoint{0.3, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  sh.spec.sweep.scenarios_per_point = 6;
  sh.spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  sh.spec.sweep.seed = 99;
  sh.spec.replications = 2;
  return sh;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream text;
  text << is.rdbuf();
  return text.str();
}

/// One daemon per fixture: server thread + scratch dir + a client. The
/// socket lives in /tmp directly — sun_path is ~108 bytes, so deep per-test
/// directories are not an option.
class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "profisched_serve_test").string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    socket_ = "/tmp/profisched-e2e-" + std::to_string(::getpid()) + ".sock";
    ServeOptions opts;
    opts.socket_path = socket_;
    opts.threads = 2;
    server_ = std::make_unique<Server>(opts);
    runner_ = std::thread([this] { done_jobs_ = server_->run(); });
  }

  void TearDown() override {
    if (runner_.joinable()) {
      (void)client().call(format_shutdown());
      runner_.join();
    }
    server_.reset();
    fs::remove_all(dir_);
  }

  [[nodiscard]] Client client() const { return Client(socket_); }

  /// Submit and block until the job leaves queued/running; returns its
  /// STATUS line ("job <id> <state> <mode> <priority> <detail>").
  std::string submit_and_wait(const Request& req) {
    const std::string response = client().call(format_submit(req));
    EXPECT_EQ(response.rfind("ok id ", 0), 0u) << response;
    const std::string needle = "job " + response.substr(6) + ' ';
    for (;;) {
      const std::string status = client().call(format_status());
      std::istringstream lines(status);
      for (std::string line; std::getline(lines, line);) {
        if (line.rfind(needle, 0) != 0) continue;
        if (line.find(" queued ") == std::string::npos &&
            line.find(" running ") == std::string::npos) {
          return line;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  std::string dir_;
  std::string socket_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
  std::uint64_t done_jobs_ = 0;
};

TEST_F(ServeE2E, ServedJobsAreByteIdenticalToTheBatchPipelineForEveryMode) {
  engine::SweepRunner single(2);
  for (const dist::SweepMode mode :
       {dist::SweepMode::Analysis, dist::SweepMode::Sim, dist::SweepMode::Combined,
        dist::SweepMode::Optimize}) {
    const dist::ShardSpec spec = small_spec(mode);
    std::string ref_csv, ref_json;
    switch (mode) {
      case dist::SweepMode::Analysis: {
        const auto t = engine::aggregate(spec.spec.sweep, single.run(spec.spec.sweep));
        ref_csv = t.to_csv();
        ref_json = t.to_json();
        break;
      }
      case dist::SweepMode::Sim: {
        const auto t = engine::aggregate_sim(spec.spec, single.run_sim(spec.spec));
        ref_csv = t.to_csv();
        ref_json = t.to_json();
        break;
      }
      case dist::SweepMode::Combined: {
        const auto t = engine::consistency_table(spec.spec, single.run_combined(spec.spec));
        ref_csv = t.to_csv();
        ref_json = t.to_json();
        break;
      }
      case dist::SweepMode::Optimize: {
        const opt::OptimizeSpec os{spec.spec.sweep, spec.optimize};
        const auto t = opt::aggregate_optimize(os, opt::run_optimize(single, os));
        ref_csv = t.to_csv();
        ref_json = t.to_json();
        break;
      }
    }
    for (const std::uint64_t oversplit : {1ULL, 3ULL}) {
      const std::string tag =
          std::string(dist::to_string(mode)) + "-k" + std::to_string(oversplit);
      Request req;
      req.kind = Request::Kind::Submit;
      req.spec = spec;
      req.oversplit = oversplit;
      req.csv_path = dir_ + "/" + tag + ".csv";
      req.json_path = dir_ + "/" + tag + ".json";
      const std::string line = submit_and_wait(req);
      EXPECT_NE(line.find(" done "), std::string::npos) << line;
      EXPECT_EQ(read_file(req.csv_path), ref_csv) << tag;
      EXPECT_EQ(read_file(req.json_path), ref_json) << tag;
    }
  }
}

TEST_F(ServeE2E, CancelOverTheWireStopsAQueuedOrRunningJob) {
  // Two sim jobs: the single scheduler thread serialises them, so job 2 is
  // still queued (or at worst in an early oversplit range) when the cancel
  // lands — either way CANCEL must succeed and the job must end cancelled.
  Request blocker;
  blocker.kind = Request::Kind::Submit;
  blocker.spec = small_spec(dist::SweepMode::Sim);
  blocker.spec.spec.sweep.scenarios_per_point = 40;
  Request victim = blocker;
  victim.oversplit = 40;

  ASSERT_EQ(client().call(format_submit(blocker)).rfind("ok id 1", 0), 0u);
  ASSERT_EQ(client().call(format_submit(victim)).rfind("ok id 2", 0), 0u);
  EXPECT_EQ(client().call(format_cancel(2)), "ok cancelled 2");
  for (;;) {
    const std::string status = client().call(format_status());
    if (status.find("job 2 cancelled") != std::string::npos) break;
    ASSERT_EQ(status.find("job 2 done"), std::string::npos) << status;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Unknown and already-terminal ids are loud errors, not silent no-ops.
  EXPECT_EQ(client().call(format_cancel(99)).rfind("err unknown job 99", 0), 0u);
  const std::string again = client().call(format_cancel(2));
  EXPECT_EQ(again.rfind("err ", 0), 0u);
  EXPECT_NE(again.find("already cancelled"), std::string::npos);
}

TEST_F(ServeE2E, StatsServesAManifestTheParserAndInvariantsAccept) {
  Request req;
  req.kind = Request::Kind::Submit;
  req.spec = small_spec(dist::SweepMode::Analysis);
  req.metrics_path = dir_ + "/job-metrics.json";
  const std::string line = submit_and_wait(req);
  ASSERT_NE(line.find(" done "), std::string::npos) << line;

  const std::string response = client().call(format_stats());
  ASSERT_EQ(response.rfind("ok stats\n", 0), 0u) << response;
  const obs::Manifest m = obs::parse_manifest(response.substr(9));
  EXPECT_EQ(m.run.subcommand, "serve");
  EXPECT_EQ(m.run.scenarios, req.spec.total_scenarios());
  EXPECT_GT(m.run.elapsed_s, 0.0);
  // The registry is process-global, so earlier tests in this binary also
  // incremented the serve counters — assert presence, not exact counts.
  EXPECT_GE(m.metrics.counter("serve.jobs_submitted"), 1u);
  EXPECT_GE(m.metrics.counter("serve.jobs_done"), 1u);
  // The per-job --metrics sidecar is the same document shape.
  const obs::Manifest job = obs::parse_manifest(read_file(req.metrics_path));
  EXPECT_EQ(job.run.subcommand, "serve");
  EXPECT_EQ(job.run.scenarios, req.spec.total_scenarios());
}

TEST_F(ServeE2E, SubmitValidatesDestinationsAndRejectsProtocolGarbage) {
  Request req;
  req.kind = Request::Kind::Submit;
  req.spec = small_spec(dist::SweepMode::Analysis);
  req.csv_path = "/nonexistent_profisched_dir/out.csv";
  const std::string response = client().call(format_submit(req));
  EXPECT_EQ(response.rfind("err ", 0), 0u);
  EXPECT_NE(response.find("parent directory"), std::string::npos) << response;

  EXPECT_EQ(client().call("frobnicate").rfind("err ", 0), 0u);
  EXPECT_EQ(client().call("status with trailing junk").rfind("err ", 0), 0u);
}

TEST_F(ServeE2E, ShutdownDrainsCancelsQueuedJobsAndRemovesTheSocket) {
  Request queued;
  queued.kind = Request::Kind::Submit;
  queued.spec = small_spec(dist::SweepMode::Sim);
  queued.spec.spec.sweep.scenarios_per_point = 40;
  ASSERT_EQ(client().call(format_submit(queued)).rfind("ok id 1", 0), 0u);
  ASSERT_EQ(client().call(format_submit(queued)).rfind("ok id 2", 0), 0u);

  EXPECT_EQ(client().call(format_shutdown()), "ok bye");
  runner_.join();
  // Job 1 ran (or was cut off at a boundary); job 2 never started and must
  // be cancelled by the drain, not silently dropped.
  server_.reset();  // destructor unlinks the socket
  EXPECT_FALSE(fs::exists(socket_));
  EXPECT_THROW((void)client().call(format_status()), std::runtime_error);
}

}  // namespace
}  // namespace profisched::serve
