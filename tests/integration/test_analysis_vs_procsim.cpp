// Integration: every §2 analytical bound must dominate the uniprocessor
// simulator's observations, and the exact analyses must be *reached* by their
// critical phasings.
#include <algorithm>

#include <gtest/gtest.h>

#include "apptask/processor_sim.hpp"
#include "core/response_time_edf.hpp"
#include "core/response_time_fp.hpp"
#include "core/schedulability.hpp"
#include "workload/generators.hpp"

namespace profisched {
namespace {

using apptask::ProcPolicy;
using apptask::simulate_processor;

TaskSet pair_set() {
  return TaskSet{{
      Task{.C = 2, .D = 4, .T = 6, .J = 0, .name = "t0"},
      Task{.C = 3, .D = 9, .T = 8, .J = 0, .name = "t1"},
  }};
}

TEST(AnalysisVsSim, PreemptiveFpExactAtCriticalInstant) {
  // Synchronous release IS the FP critical instant: simulation must hit the
  // Joseph–Pandya bound exactly for a schedulable constrained-deadline set.
  const TaskSet ts{{
      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = ""},
      Task{.C = 3, .D = 12, .T = 12, .J = 0, .name = ""},
      Task{.C = 5, .D = 20, .T = 20, .J = 0, .name = ""},
  }};
  const FpAnalysis a = analyze_preemptive_fp(ts, deadline_monotonic_order(ts));
  const auto sim = simulate_processor(ts, ProcPolicy::FpPreemptive, ts.hyperperiod());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(sim.max_response[i], a.per_task[i].response) << "task " << i;
  }
}

TEST(AnalysisVsSim, PreemptiveEdfExactOnPairSet) {
  // Spuri's analysis gives R = {2, 5}; the synchronous pattern reaches both.
  const TaskSet ts = pair_set();
  const EdfAnalysis a = analyze_preemptive_edf(ts);
  const auto sim = simulate_processor(ts, ProcPolicy::EdfPreemptive, ts.hyperperiod());
  EXPECT_EQ(sim.max_response[0], a.per_task[0].response);
  EXPECT_EQ(sim.max_response[1], a.per_task[1].response);
}

TEST(AnalysisVsSim, NonPreemptiveEdfBoundReachedByAdversarialPhasing) {
  // R0 = 4 requires the long task to start one tick before τ0's release:
  // phases (1, 0). R1 = 5 is reached synchronously.
  const TaskSet ts = pair_set();
  const EdfAnalysis a = analyze_nonpreemptive_edf(ts);
  ASSERT_EQ(a.per_task[0].response, 4);
  ASSERT_EQ(a.per_task[1].response, 5);

  const std::vector<Ticks> adversarial{1, 0};
  const auto sim_adv =
      simulate_processor(ts, ProcPolicy::EdfNonPreemptive, 200, adversarial);
  EXPECT_EQ(sim_adv.max_response[0], 4);

  const auto sim_sync = simulate_processor(ts, ProcPolicy::EdfNonPreemptive, 200);
  EXPECT_EQ(sim_sync.max_response[1], 5);
}

TEST(AnalysisVsSim, NonPreemptiveFpBoundReachedByBlockerFirstPhasing) {
  // t1: C=1 D=4 T=4, t2: C=1 D=5 T=5, t3: C=3 T=9 (refined R = {3, 4, 5}).
  // The blocker-first phasing (t3 at 0, others at 1) realises t1's bound:
  // t3 [0,3), t1 [3,4) → R = 3.
  const TaskSet ts{{
      Task{.C = 1, .D = 4, .T = 4, .J = 0, .name = ""},
      Task{.C = 1, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  const FpAnalysis a =
      analyze_nonpreemptive_fp(ts, deadline_monotonic_order(ts), Formulation::Refined);
  const std::vector<Ticks> phases{1, 1, 0};
  const auto sim = simulate_processor(ts, ProcPolicy::FpNonPreemptive, 500, phases);
  EXPECT_EQ(sim.max_response[0], a.per_task[0].response);  // both 3
}

// ---- randomized safety sweep: observation <= bound, always ----

struct SweepParam {
  std::uint64_t seed;
  double utilization;
};

class RandomSetSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomSetSweep, AllBoundsDominateSimulation) {
  sim::Rng rng(GetParam().seed);
  workload::TaskSetParams p;
  p.n = 4;
  p.total_u = GetParam().utilization;
  p.t_min = 10;
  p.t_max = 60;
  p.deadline_lo = 0.7;
  p.deadline_hi = 1.0;
  const TaskSet ts = workload::random_task_set(p, rng);
  const Ticks horizon = std::min<Ticks>(ts.hyperperiod() * 2, 2'000'000);

  const struct {
    Policy policy;
    ProcPolicy sim_policy;
  } combos[] = {
      {Policy::DeadlineMonotonic, ProcPolicy::FpPreemptive},
      {Policy::NpDeadlineMonotonic, ProcPolicy::FpNonPreemptive},
      {Policy::Edf, ProcPolicy::EdfPreemptive},
      {Policy::NpEdf, ProcPolicy::EdfNonPreemptive},
  };

  for (const auto& combo : combos) {
    const Verdict v = analyze(ts, combo.policy);
    // Synchronous + three random phasings.
    for (int phasing = 0; phasing < 4; ++phasing) {
      std::vector<Ticks> phases(ts.size(), 0);
      if (phasing > 0) {
        for (std::size_t i = 0; i < ts.size(); ++i) phases[i] = rng.uniform(ts[i].T);
      }
      const auto sim = simulate_processor(ts, combo.sim_policy, horizon, phases);
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (v.per_task[i].response == kNoBound) continue;  // analysis gave up: nothing to check
        EXPECT_LE(sim.max_response[i], v.per_task[i].response)
            << to_string(combo.policy) << " task " << i << " phasing " << phasing
            << " seed " << GetParam().seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomSetSweep,
    ::testing::Values(SweepParam{1, 0.4}, SweepParam{2, 0.5}, SweepParam{3, 0.6},
                      SweepParam{4, 0.7}, SweepParam{5, 0.8}, SweepParam{6, 0.6},
                      SweepParam{7, 0.7}, SweepParam{8, 0.5}, SweepParam{9, 0.8},
                      SweepParam{10, 0.9}, SweepParam{11, 0.65}, SweepParam{12, 0.75}),
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_u" +
             std::to_string(static_cast<int>(param_info.param.utilization * 100));
    });

}  // namespace
}  // namespace profisched
