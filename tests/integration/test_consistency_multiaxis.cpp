// Analysis-vs-simulation consistency over the PR-5 scenario-diversity axes:
// asymmetric per-master splits (explicit weights and geometric skew) and
// multi-ring-size grids. Same contract as the PR-2 suite — on >= 100
// scenarios per policy per mode, every bounded analytic WCRT dominates the
// observed max response and no accepted scenario ever misses a deadline in
// simulation. A violation falsifies the corresponding analysis (or the
// simulator's protocol conformance) for the newly opened workload family.
#include <gtest/gtest.h>

#include "engine/sim_aggregate.hpp"
#include "engine/sweep_runner.hpp"

namespace profisched::engine {
namespace {

/// Run the combined (analysis + simulation) backend and assert the
/// domination contract on every joined row, non-vacuously.
void expect_analysis_dominates(const SimSweepSpec& spec, const char* mode) {
  SweepRunner runner;
  const CombinedResult result = runner.run_combined(spec);
  ASSERT_EQ(result.outcomes.size(), spec.sweep.total_scenarios()) << mode;

  EXPECT_EQ(result.total_bound_violations(), 0u) << mode;
  EXPECT_EQ(result.accept_but_miss_count(), 0u) << mode;

  const ConsistencyTable table = consistency_table(spec, result);
  std::size_t observed_something = 0;
  for (const ConsistencyRow& r : table.rows) {
    EXPECT_FALSE(r.accept_but_miss) << mode << " scenario " << r.id << " policy " << r.policy;
    EXPECT_EQ(r.bound_violations, 0u)
        << mode << " scenario " << r.id << " policy " << r.policy;
    if (r.analytic_wcrt != kNoBound) {
      EXPECT_GE(r.analytic_wcrt, r.observed_max)
          << mode << " scenario " << r.id << " policy " << r.policy;
      if (r.observed_max > 0) ++observed_something;
    }
  }
  // >= 100 scenarios per policy, and the property must not pass vacuously.
  EXPECT_GE(spec.sweep.total_scenarios(), 100u) << mode;
  EXPECT_GT(observed_something, 100u) << mode;
}

SimSweepSpec base_spec() {
  SimSweepSpec spec;
  spec.sweep.base.streams_per_master = 3;
  spec.sweep.base.ttr = 4'000;
  spec.sweep.scenarios_per_point = 26;  // x4 points = 104 scenarios per policy
  spec.sweep.policies = {Policy::Fcfs, Policy::Dm, Policy::Edf};
  spec.sweep.seed = 2027;
  spec.replications = 2;  // synchronous + randomly phased
  spec.sim.horizon_cycles = 30.0;
  return spec;
}

TEST(ConsistencyMultiAxis, WeightedSplitScenarios) {
  SimSweepSpec spec = base_spec();
  spec.sweep.base.n_masters = 3;
  spec.sweep.base.master_split = {0.5, 0.3, 0.2};
  spec.sweep.points = {SweepPoint{0.3, 0.5, 1.0}, SweepPoint{0.6, 0.5, 1.0},
                       SweepPoint{0.9, 0.5, 1.0}, SweepPoint{1.2, 0.4, 1.0}};
  expect_analysis_dominates(spec, "weighted split");
}

TEST(ConsistencyMultiAxis, SkewedSplitScenarios) {
  SimSweepSpec spec = base_spec();
  spec.sweep.base.n_masters = 4;
  spec.sweep.base.master_skew = 1.0;  // 2x load step between neighbours
  spec.sweep.points = {SweepPoint{0.4, 0.5, 1.0}, SweepPoint{0.8, 0.5, 1.0},
                       SweepPoint{1.2, 0.5, 1.0}, SweepPoint{1.6, 0.4, 1.0}};
  expect_analysis_dominates(spec, "skewed split");
}

TEST(ConsistencyMultiAxis, MultiRingSizeScenarios) {
  SimSweepSpec spec = base_spec();
  spec.sweep.base.n_masters = 1;
  // Ring-size axis x u axis: 2 x 2 points, 26 scenarios each.
  spec.sweep.points = {SweepPoint{0.4, 0.5, 1.0, 1}, SweepPoint{0.9, 0.5, 1.0, 1},
                       SweepPoint{0.4, 0.5, 1.0, 4}, SweepPoint{0.9, 0.5, 1.0, 4}};
  expect_analysis_dominates(spec, "multi ring size");
}

/// The acceptance cliff must respond to the split: concentrating the whole
/// budget on one master of three saturates that master's queue well before a
/// symmetric division would — visible as a lower analytic acceptance count on
/// the same grid. Guards against a split that silently degrades to symmetric.
TEST(ConsistencyMultiAxis, SkewShiftsTheAcceptanceCliff) {
  SweepSpec sym;
  sym.base.n_masters = 3;
  sym.base.streams_per_master = 3;
  sym.base.ttr = 4'000;
  sym.points = {SweepPoint{2.1, 0.5, 1.0}};
  sym.scenarios_per_point = 60;
  sym.policies = {Policy::Dm};
  sym.seed = 31;

  // Same total budget, but one master carries ~0.98 of it (u ~ 2.05 alone).
  SweepSpec hot = sym;
  hot.base.master_split = {0.98, 0.01, 0.01};

  // Symmetric semantics load each master to 2.1 (overload everywhere); the
  // network-wide split leaves masters 1/2 nearly idle but drowns master 0.
  // Compare against an even network-wide split (0.7 per master, feasible).
  SweepSpec even = sym;
  even.base.master_split = {1.0, 1.0, 1.0};

  SweepRunner runner;
  const auto accepted = [&](const SweepSpec& s) {
    std::size_t n = 0;
    for (const ScenarioOutcome& o : runner.run(s).outcomes) {
      if (o.schedulable[0]) ++n;
    }
    return n;
  };
  const std::size_t even_ok = accepted(even);
  const std::size_t hot_ok = accepted(hot);
  EXPECT_GT(even_ok, hot_ok) << "a 98%-hot split must schedule fewer sets than an even split";
}

}  // namespace
}  // namespace profisched::engine
