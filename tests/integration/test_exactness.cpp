// Integration: exactness of the EDF analyses. Spuri's preemptive and
// George's non-preemptive analyses are exact for sporadic sets — some
// concrete release pattern attains the bound. For two-task sets, sweeping the
// relative phase over one period enumerates (up to hyperperiod shift) every
// pattern, so the observed maximum over the sweep must EQUAL the analytic
// bound, not just stay below it.
#include <algorithm>

#include <gtest/gtest.h>

#include "apptask/processor_sim.hpp"
#include "core/response_time_edf.hpp"

namespace profisched {
namespace {

using apptask::ProcPolicy;
using apptask::simulate_processor;

struct PairParam {
  Ticks c0, d0, t0;
  Ticks c1, d1, t1;
};

class PairSweep : public ::testing::TestWithParam<PairParam> {
 protected:
  [[nodiscard]] TaskSet set() const {
    const PairParam& p = GetParam();
    return TaskSet{{
        Task{.C = p.c0, .D = p.d0, .T = p.t0, .J = 0, .name = "t0"},
        Task{.C = p.c1, .D = p.d1, .T = p.t1, .J = 0, .name = "t1"},
    }};
  }

  /// Max observed response per task over all relative phases in [0, T_other).
  [[nodiscard]] std::vector<Ticks> sweep(ProcPolicy policy) const {
    const TaskSet ts = set();
    const Ticks horizon = std::min<Ticks>(ts.hyperperiod() * 3, 500'000);
    std::vector<Ticks> best(2, 0);
    for (Ticks phase = 0; phase < std::max(ts[0].T, ts[1].T); ++phase) {
      for (int which = 0; which < 2; ++which) {
        std::vector<Ticks> phases{0, 0};
        phases[static_cast<std::size_t>(which)] = phase;
        const auto r = simulate_processor(ts, policy, horizon, phases);
        for (std::size_t i = 0; i < 2; ++i) {
          best[i] = std::max(best[i], r.max_response[i]);
        }
      }
    }
    return best;
  }
};

TEST_P(PairSweep, PreemptiveEdfBoundIsAttained) {
  const TaskSet ts = set();
  const EdfAnalysis a = analyze_preemptive_edf(ts);
  ASSERT_TRUE(a.per_task[0].converged && a.per_task[1].converged);
  const std::vector<Ticks> observed = sweep(ProcPolicy::EdfPreemptive);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(observed[i], a.per_task[i].response) << "task " << i;
  }
}

TEST_P(PairSweep, NonPreemptiveEdfBoundIsAttained) {
  const TaskSet ts = set();
  const EdfAnalysis a = analyze_nonpreemptive_edf(ts);
  ASSERT_TRUE(a.per_task[0].converged && a.per_task[1].converged);
  const std::vector<Ticks> observed = sweep(ProcPolicy::EdfNonPreemptive);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(observed[i], a.per_task[i].response) << "task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallPairs, PairSweep,
    ::testing::Values(PairParam{2, 4, 6, 3, 9, 8},     // the worked example from the tests
                      PairParam{1, 3, 5, 4, 11, 11},   // long blocker, tight victim
                      PairParam{3, 7, 9, 2, 10, 12},   // similar rates
                      PairParam{2, 2, 8, 5, 13, 14},   // D << T on the tight task
                      PairParam{4, 12, 12, 3, 8, 10}), // inverted deadline order
    [](const auto& param_info) {
      const PairParam& p = param_info.param;
      return "c" + std::to_string(p.c0) + "d" + std::to_string(p.d0) + "t" +
             std::to_string(p.t0) + "_c" + std::to_string(p.c1) + "d" + std::to_string(p.d1) +
             "t" + std::to_string(p.t1);
    });

}  // namespace
}  // namespace profisched
