// Integration: the paper's comparative claims about AP-level dispatching
// (§4 / conclusions), checked as properties over generated networks.
#include <gtest/gtest.h>

#include "profibus/dispatching.hpp"
#include "workload/generators.hpp"

namespace profisched {
namespace {

using profibus::ApPolicy;

class NetworkSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkSeedSweep, TightestStreamNeverWorseUnderPriorityQueues) {
  sim::Rng rng(GetParam());
  workload::NetworkParams p;
  p.n_masters = 2;
  p.streams_per_master = 4;
  p.deadline_lo = 0.3;  // spread deadlines so "tight" means something
  const workload::GeneratedNetwork g = workload::random_network(p, rng);

  const auto fcfs = analyze_network(g.net, ApPolicy::Fcfs);
  const auto dm = analyze_network(g.net, ApPolicy::Dm);
  const auto edf = analyze_network(g.net, ApPolicy::Edf);

  // Per master, the deadline-rank-0 stream has no DM interference: its DM
  // bound (<= 2·T_cycle) never exceeds the FCFS bound (nh·T_cycle).
  for (std::size_t k = 0; k < g.net.n_masters(); ++k) {
    std::size_t tightest = 0;
    for (std::size_t i = 1; i < g.net.masters[k].nh(); ++i) {
      if (g.net.masters[k].high_streams[i].D <
          g.net.masters[k].high_streams[tightest].D) {
        tightest = i;
      }
    }
    const Ticks f = fcfs.masters[k].streams[tightest].response;
    const Ticks d = dm.masters[k].streams[tightest].response;
    const Ticks e = edf.masters[k].streams[tightest].response;
    ASSERT_NE(f, kNoBound);
    if (d != kNoBound) {
      EXPECT_LE(d, f) << "master " << k << " seed " << GetParam();
    }
    if (e != kNoBound) {
      EXPECT_LE(e, f) << "master " << k << " seed " << GetParam();
    }
  }
}

TEST_P(NetworkSeedSweep, FcfsBoundIsDeadlineBlind) {
  // Eq. 11 gives every stream of a master the same bound — the defining
  // limitation of FCFS the paper removes.
  sim::Rng rng(GetParam() + 100);
  const workload::GeneratedNetwork g = workload::random_network(workload::NetworkParams{}, rng);
  const auto fcfs = analyze_network(g.net, ApPolicy::Fcfs);
  for (const auto& master : fcfs.masters) {
    for (std::size_t i = 1; i < master.streams.size(); ++i) {
      EXPECT_EQ(master.streams[i].response, master.streams[0].response);
    }
  }
}

TEST_P(NetworkSeedSweep, PriorityQueuesDifferentiateByDeadline) {
  // Under DM, bounds are non-decreasing in deadline rank within a master.
  sim::Rng rng(GetParam() + 200);
  workload::NetworkParams p;
  p.streams_per_master = 5;
  p.deadline_lo = 0.2;
  const workload::GeneratedNetwork g = workload::random_network(p, rng);
  const auto dm = analyze_network(g.net, ApPolicy::Dm);
  for (std::size_t k = 0; k < g.net.n_masters(); ++k) {
    // Sort stream indices by deadline; responses must follow that order
    // whenever bounded (interference only grows with rank).
    std::vector<std::size_t> idx(g.net.masters[k].nh());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return g.net.masters[k].high_streams[a].D < g.net.masters[k].high_streams[b].D;
    });
    // The top-ranked stream's bound is minimal among bounded ones.
    const Ticks top = dm.masters[k].streams[idx[0]].response;
    if (top == kNoBound) continue;
    for (std::size_t r = 1; r < idx.size(); ++r) {
      const Ticks other = dm.masters[k].streams[idx[r]].response;
      if (other != kNoBound) {
        EXPECT_LE(top, other) << "master " << k;
      }
    }
  }
}

TEST_P(NetworkSeedSweep, SchedulabilityCountsFollowThePapersOrdering) {
  // Across many random networks the *count* of schedulable stream sets obeys
  // FCFS <= DM on sets with spread deadlines (the paper's motivation). This
  // is a statistical claim; per-instance exceptions are possible with short
  // periods, so the assertion is on the aggregate.
  sim::Rng rng(GetParam() + 300);
  int fcfs_ok = 0, dm_ok = 0;
  for (int t = 0; t < 30; ++t) {
    workload::NetworkParams p;
    p.streams_per_master = 4;
    p.deadline_lo = 0.25;
    p.ttr = 0;  // auto: max eq.-15 TTR or fallback
    const workload::GeneratedNetwork g = workload::random_network(p, rng);
    fcfs_ok += analyze_network(g.net, ApPolicy::Fcfs).schedulable;
    dm_ok += analyze_network(g.net, ApPolicy::Dm).schedulable;
  }
  EXPECT_GE(dm_ok, fcfs_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkSeedSweep, ::testing::Values(51, 52, 53, 54, 55, 56));

}  // namespace
}  // namespace profisched
