// Integration: the different §2 tests must agree with each other where the
// theory says they are equivalent, and dominate each other where the theory
// says one is sufficient-only.
#include <gtest/gtest.h>

#include "core/edf_feasibility.hpp"
#include "core/response_time_edf.hpp"
#include "core/schedulability.hpp"
#include "core/utilization.hpp"
#include "workload/generators.hpp"

namespace profisched {
namespace {

TaskSet draw(std::uint64_t seed, double u, double dl_lo = 0.6) {
  sim::Rng rng(seed);
  workload::TaskSetParams p;
  p.n = 4;
  p.total_u = u;
  p.t_min = 10;
  p.t_max = 80;
  p.deadline_lo = dl_lo;
  p.deadline_hi = 1.0;
  return workload::random_task_set(p, rng);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, PreemptiveEdfDemandTestEquivalentToRta) {
  // Both the processor-demand criterion (eq. 3) and Spuri's RTA (eqs. 6–8)
  // are exact for sporadic sets: verdicts must coincide.
  for (const double u : {0.5, 0.7, 0.85, 0.95}) {
    const TaskSet ts = draw(GetParam(), u);
    const bool demand = edf_preemptive_feasible(ts).feasible;
    const bool rta = analyze_preemptive_edf(ts).schedulable;
    EXPECT_EQ(demand, rta) << "seed " << GetParam() << " u " << u;
  }
}

TEST_P(SeedSweep, GeorgeNpTestEquivalentToNpRta) {
  // George's eq. 5 and the NP-EDF RTA (eqs. 9–10) are both exact for
  // non-concrete sporadic sets: verdicts must coincide.
  for (const double u : {0.4, 0.6, 0.8}) {
    const TaskSet ts = draw(GetParam(), u);
    const bool test5 = np_edf_feasible_george(ts).feasible;
    const bool rta = analyze_nonpreemptive_edf(ts).schedulable;
    EXPECT_EQ(test5, rta) << "seed " << GetParam() << " u " << u;
  }
}

TEST_P(SeedSweep, ZhengShinNeverAcceptsWhatGeorgeRejects) {
  for (const double u : {0.4, 0.6, 0.8, 0.9}) {
    const TaskSet ts = draw(GetParam(), u);
    if (np_edf_feasible_zheng_shin(ts).feasible) {
      EXPECT_TRUE(np_edf_feasible_george(ts).feasible) << "seed " << GetParam() << " u " << u;
    }
  }
}

TEST_P(SeedSweep, UtilizationTestsImplyRtaSchedulability) {
  for (const double u : {0.5, 0.65, 0.69}) {
    const TaskSet ts = draw(GetParam(), u, /*dl_lo=*/1.0);  // D = T
    if (liu_layland_test(ts)) {
      EXPECT_TRUE(analyze(ts, Policy::RateMonotonic).schedulable)
          << "seed " << GetParam() << " u " << u;
    }
    if (hyperbolic_bound_test(ts)) {
      EXPECT_TRUE(analyze(ts, Policy::RateMonotonic).schedulable)
          << "seed " << GetParam() << " u " << u;
    }
  }
}

TEST_P(SeedSweep, PreemptiveEdfDominatesEveryOtherPolicy) {
  // Preemptive EDF is optimal on one processor: if *any* policy schedules the
  // set, EDF does.
  for (const double u : {0.6, 0.8, 0.95}) {
    const TaskSet ts = draw(GetParam(), u);
    const bool edf = analyze(ts, Policy::Edf).schedulable;
    for (const Policy p : {Policy::DeadlineMonotonic, Policy::NpDeadlineMonotonic,
                           Policy::NpEdf}) {
      if (analyze(ts, p).schedulable) {
        EXPECT_TRUE(edf) << to_string(p) << " schedulable but EDF not — seed " << GetParam();
      }
    }
  }
}

TEST_P(SeedSweep, NonPreemptiveVerdictsNeverBeatPreemptiveEdf) {
  // NP-EDF schedulable ⇒ preemptive-EDF schedulable (blocking is pure loss
  // for feasibility of sporadic sets).
  for (const double u : {0.5, 0.75}) {
    const TaskSet ts = draw(GetParam() + 1000, u);
    if (analyze(ts, Policy::NpEdf).schedulable) {
      EXPECT_TRUE(analyze(ts, Policy::Edf).schedulable) << "seed " << GetParam();
    }
  }
}

TEST_P(SeedSweep, PaperLiteralNpDmImpliesRefinedNpDm) {
  // The literal formulation is the more pessimistic NP-FP variant: sets it
  // accepts, the refined analysis accepts as well.
  for (const double u : {0.5, 0.7, 0.85}) {
    const TaskSet ts = draw(GetParam() + 2000, u);
    if (analyze(ts, Policy::NpDeadlineMonotonic, Formulation::PaperLiteral).schedulable) {
      EXPECT_TRUE(analyze(ts, Policy::NpDeadlineMonotonic, Formulation::Refined).schedulable)
          << "seed " << GetParam() << " u " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43,
                                           44, 45));

}  // namespace
}  // namespace profisched
