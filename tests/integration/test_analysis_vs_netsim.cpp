// Integration: the PROFIBUS network simulator must respect the §3–§4
// analytical bounds — T_cycle dominates every observed token rotation, and
// each dispatching policy's response-time analysis dominates the observed
// response of every stream.
#include <algorithm>

#include <gtest/gtest.h>

#include "profibus/dispatching.hpp"
#include "sim/network_sim.hpp"
#include "workload/generators.hpp"
#include "workload/scenarios.hpp"

namespace profisched {
namespace {

using profibus::ApPolicy;
using profibus::Network;

sim::SimReport run_synchronous(const Network& net, ApPolicy policy, Ticks horizon,
                               std::uint64_t seed = 1) {
  sim::SimConfig cfg;
  cfg.net = net;
  cfg.policy = policy;
  cfg.horizon = horizon;
  cfg.seed = seed;
  // Worst-case cycle durations and synchronous release: the adversarial
  // setting the analyses reason about.
  return sim::simulate(cfg);
}

void expect_bounded_by_analysis(const Network& net, const profibus::NetworkAnalysis& analysis,
                                const sim::SimReport& report, const char* label) {
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    // Token rotation never exceeds T_cycle.
    EXPECT_LE(report.token[k].max_trr, analysis.tcycle) << label << " master " << k;
    for (std::size_t i = 0; i < net.masters[k].nh(); ++i) {
      const Ticks bound = analysis.masters[k].streams[i].response;
      if (bound == kNoBound) continue;
      EXPECT_LE(report.hp[k][i].max_response, bound)
          << label << " master " << k << " stream " << i;
    }
  }
}

TEST(NetSimVsAnalysis, FactoryCellAllPolicies) {
  const Network net = workload::scenarios::factory_cell();
  const Ticks horizon = 600 * workload::scenarios::kTicksPerMs;  // 600 ms
  for (const ApPolicy policy : {ApPolicy::Fcfs, ApPolicy::Dm, ApPolicy::Edf}) {
    const profibus::NetworkAnalysis a = analyze_network(net, policy);
    const sim::SimReport r = run_synchronous(net, policy, horizon);
    expect_bounded_by_analysis(net, a, r, to_string(policy).data());
    if (a.schedulable) {
      std::uint64_t misses = r.total_misses();
      EXPECT_EQ(misses, 0u) << to_string(policy);
    }
  }
}

TEST(NetSimVsAnalysis, TightDeadlineMixShowsTheFcfsPathologyLive) {
  // Not just on paper: simulate the FCFS pathology with an adversarial
  // arrival order (lax requests queued just before the tight one).
  const Network net = workload::scenarios::tight_deadline_mix();
  const Ticks horizon = 500 * workload::scenarios::kTicksPerMs;

  sim::SimConfig cfg;
  cfg.net = net;
  cfg.horizon = horizon;
  // Stream 0 is tight; have every lax stream release just before it.
  cfg.hp_traffic = {{sim::TrafficConfig{.phase = 10},
                     sim::TrafficConfig{.phase = 0},
                     sim::TrafficConfig{.phase = 0},
                     sim::TrafficConfig{.phase = 0}}};

  cfg.policy = ApPolicy::Fcfs;
  const sim::SimReport fcfs = sim::simulate(cfg);
  cfg.policy = ApPolicy::Dm;
  const sim::SimReport dm = sim::simulate(cfg);

  // DM strictly improves the tight stream's observed worst case.
  EXPECT_LT(dm.hp[0][0].max_response, fcfs.hp[0][0].max_response);
  // And stays within its analytic bound.
  const profibus::NetworkAnalysis a = analyze_network(net, ApPolicy::Dm);
  EXPECT_LE(dm.hp[0][0].max_response, a.masters[0].streams[0].response);
}

TEST(NetSimVsAnalysis, TokenRotationBoundHoldsUnderHeavyLoad) {
  // Saturating LP + HP traffic: rotations stretch, but never past T_cycle.
  Network net = workload::scenarios::factory_cell();
  sim::SimConfig cfg;
  cfg.net = net;
  cfg.policy = ApPolicy::Fcfs;
  cfg.horizon = 1'000 * workload::scenarios::kTicksPerMs;
  cfg.lp_traffic.resize(net.n_masters());
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    cfg.lp_traffic[k].push_back(sim::LpTraffic{
        .period = 5 * workload::scenarios::kTicksPerMs,
        .cycle_len = net.masters[k].longest_low_cycle,
        .phase = 0});
  }
  const sim::SimReport r = sim::simulate(cfg);
  const Ticks tcycle = profibus::t_cycle(net);
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    EXPECT_LE(r.token[k].max_trr, tcycle) << "master " << k;
    EXPECT_GT(r.token[k].visits, 10u);
  }
  EXPECT_GT(r.lp_cycles_completed, 0u);
}

// ---- randomized sweep over generated networks ----

class RandomNetworkSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetworkSweep, BoundsDominateSimulationForAllPolicies) {
  sim::Rng rng(GetParam());
  workload::NetworkParams p;
  p.n_masters = 2 + static_cast<std::size_t>(rng.uniform(2));
  p.streams_per_master = 2 + static_cast<std::size_t>(rng.uniform(2));
  const workload::GeneratedNetwork g = workload::random_network(p, rng);

  const Ticks horizon = std::min<Ticks>(profibus::t_cycle(g.net) * 60, 10'000'000);
  for (const ApPolicy policy : {ApPolicy::Fcfs, ApPolicy::Dm, ApPolicy::Edf}) {
    const profibus::NetworkAnalysis a = analyze_network(g.net, policy);
    // Synchronous and one randomly-phased run.
    const sim::SimReport sync = run_synchronous(g.net, policy, horizon, GetParam());
    expect_bounded_by_analysis(g.net, a, sync, to_string(policy).data());

    sim::SimConfig cfg;
    cfg.net = g.net;
    cfg.policy = policy;
    cfg.horizon = horizon;
    cfg.seed = GetParam() * 7 + 1;
    cfg.hp_traffic.resize(g.net.n_masters());
    for (std::size_t k = 0; k < g.net.n_masters(); ++k) {
      for (std::size_t i = 0; i < g.net.masters[k].nh(); ++i) {
        cfg.hp_traffic[k].push_back(
            sim::TrafficConfig{.phase = rng.uniform(g.net.masters[k].high_streams[i].T)});
      }
    }
    const sim::SimReport phased = sim::simulate(cfg);
    expect_bounded_by_analysis(g.net, a, phased, to_string(policy).data());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace profisched
