// E10 (§4.3 eq. 16 vs §3.2 eq. 11) — THE HEADLINE EXPERIMENT: the DM-ordered
// AP queue vs the stock FCFS queue. Regenerates the paper's concluding claim:
// "the use of priority-based dispatching mechanism at the application process
// level allows the support of messages with more tight deadlines" — tight
// streams gain, lax streams pay, and whole stream sets become schedulable
// that FCFS cannot support.
#include "common.hpp"

#include "engine/aggregate.hpp"
#include "profibus/dispatching.hpp"
#include "workload/generators.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

void per_stream_table() {
  const Network net = workload::scenarios::tight_deadline_mix();
  const NetworkAnalysis fcfs = analyze_network(net, ApPolicy::Fcfs);
  const NetworkAnalysis dm = analyze_network(net, ApPolicy::Dm);

  std::printf("\ntight_deadline_mix, per-stream worst-case response (ms @500kbit/s):\n");
  Table t({"stream", "D (ms)", "R FCFS (ms)", "meets?", "R DM (ms)", "meets?"});
  for (std::size_t i = 0; i < net.masters[0].nh(); ++i) {
    const auto& s = net.masters[0].high_streams[i];
    t.row({s.name, bench::ms_from_ticks(s.D),
           bench::ms_from_ticks(fcfs.masters[0].streams[i].response),
           fcfs.masters[0].streams[i].meets_deadline ? "yes" : "NO",
           bench::ms_from_ticks(dm.masters[0].streams[i].response),
           dm.masters[0].streams[i].meets_deadline ? "yes" : "NO"});
  }
  t.print();
  std::printf("Set schedulable: FCFS=%s DM=%s\n", fcfs.schedulable ? "yes" : "NO",
              dm.schedulable ? "yes" : "NO");
}

void acceptance_sweep() {
  std::printf("\nSchedulable-set ratio vs deadline spread (400 random single-master\n"
              "networks per cell, nh=5; deadlines drawn in [beta_lo*T, T]) —\n"
              "batched through the engine:\n");
  engine::SweepSpec spec;
  spec.base.n_masters = 1;
  spec.base.streams_per_master = 5;
  spec.base.ttr = 0;  // auto eq.-15 or fallback (legacy period-driven mode)
  for (const double beta : {1.0, 0.7, 0.5, 0.3, 0.2}) {
    spec.points.push_back(engine::SweepPoint{0.0, beta, 1.0});
  }
  spec.scenarios_per_point = 400;
  spec.policies = {engine::Policy::Fcfs, engine::Policy::Dm};
  spec.seed = 5;
  engine::SweepRunner runner;
  const engine::SweepResult result = runner.run(spec);
  const engine::SweepCurves curves = engine::aggregate(spec, result);

  // Per-scenario verdicts give the cross-policy counts the aggregate lacks.
  const std::vector<std::size_t> dm_only =
      engine::count_exclusive(spec, result, engine::Policy::Dm, engine::Policy::Fcfs);
  const std::vector<std::size_t> fcfs_only =
      engine::count_exclusive(spec, result, engine::Policy::Fcfs, engine::Policy::Dm);

  Table t({"beta_lo", "FCFS sched%", "DM sched%", "DM-only", "FCFS-only"});
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    t.row({bench::fmt(spec.points[i].beta_lo, 1), bench::pct(curves.points[i].ratio(0)),
           bench::pct(curves.points[i].ratio(1)), std::to_string(dm_only[i]),
           std::to_string(fcfs_only[i])});
  }
  t.print();
  std::printf("(%zu scenarios, %u threads, %.3f s; timing memo %zu hits / %zu misses)\n",
              result.outcomes.size(), runner.threads(), result.elapsed_s, result.memo_hits,
              result.memo_misses);
}

void sweep_speedup() {
  std::printf("\nEngine scaling on the UUniFast acceptance sweep (nh=5, 1000 scenarios,\n"
              "FCFS+DM+EDF each) — aggregates are bit-identical for every thread count:\n");
  engine::SweepSpec spec;
  spec.base.n_masters = 1;
  spec.base.streams_per_master = 5;
  spec.base.ttr = 3'000;
  for (const double u : {0.2, 0.4, 0.6, 0.8}) {
    spec.points.push_back(engine::SweepPoint{u, 0.5, 1.0});
  }
  spec.scenarios_per_point = 250;
  spec.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  spec.seed = 10;

  Table t({"threads", "wall (s)", "speedup", "identical?"});
  std::string baseline_csv;
  double baseline_s = 0.0;
  for (const unsigned threads : {1u, 2u, 4u}) {
    engine::SweepRunner runner(threads);
    const engine::SweepResult result = runner.run(spec);
    const std::string csv = engine::aggregate(spec, result).to_csv();
    if (threads == 1) {
      baseline_csv = csv;
      baseline_s = result.elapsed_s;
    }
    t.row({std::to_string(threads), bench::fmt(result.elapsed_s, 4),
           bench::fmt(baseline_s / (result.elapsed_s > 0 ? result.elapsed_s : 1e-9), 2) + "x",
           csv == baseline_csv ? "yes" : "NO"});
  }
  t.print();
}

void improvement_factor() {
  std::printf("\nTightest-stream improvement factor (FCFS bound / DM bound) vs nh:\n");
  Table t({"nh", "R FCFS", "R DM (tightest)", "factor"});
  for (const std::size_t nh : {2u, 4u, 8u, 12u}) {
    Network net;
    net.ttr = 20'000;
    Master m;
    for (std::size_t i = 0; i < nh; ++i) {
      m.high_streams.push_back(MessageStream{.Ch = 600,
                                             .D = 30'000 + 50'000 * static_cast<Ticks>(i),
                                             .T = 400'000,
                                             .J = 0,
                                             .name = ""});
    }
    net.masters = {m};
    const Ticks rf = analyze_network(net, ApPolicy::Fcfs).masters[0].streams[0].response;
    const Ticks rd = analyze_network(net, ApPolicy::Dm).masters[0].streams[0].response;
    t.row({std::to_string(nh), bench::fmt_t(rf), bench::fmt_t(rd),
           bench::fmt(static_cast<double>(rf) / static_cast<double>(rd), 2)});
  }
  t.print();
}

void run_experiment() {
  bench::banner("E10", "HEADLINE: DM application-process queue vs stock FCFS (eq. 16 vs eq. 11)");
  per_stream_table();
  acceptance_sweep();
  sweep_speedup();
  improvement_factor();
  std::printf("\nExpected shape: the tight stream misses only under FCFS; DM-only wins\n"
              "grow as deadlines spread (beta_lo shrinking), FCFS-only stays rare (it\n"
              "needs short periods that punish DM's multiple-interference terms); the\n"
              "tightest-stream factor approaches nh/2.\n");
}

void BM_DmNetworkAnalysis(benchmark::State& state) {
  sim::Rng rng(77);
  workload::NetworkParams p;
  p.n_masters = 4;
  p.streams_per_master = static_cast<std::size_t>(state.range(0));
  const workload::GeneratedNetwork g = workload::random_network(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(analyze_dm(g.net).schedulable);
}
BENCHMARK(BM_DmNetworkAnalysis)->Arg(4)->Arg(8)->Arg(16);

void BM_EngineSweep(benchmark::State& state) {
  engine::SweepSpec spec;
  spec.base.n_masters = 1;
  spec.base.streams_per_master = 5;
  spec.base.ttr = 3'000;
  spec.points = {engine::SweepPoint{0.4, 0.5, 1.0}, engine::SweepPoint{0.7, 0.5, 1.0}};
  spec.scenarios_per_point = 100;
  spec.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  engine::SweepRunner runner(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(spec).outcomes.size());
  }
}
BENCHMARK(BM_EngineSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCH_MAIN(run_experiment)
