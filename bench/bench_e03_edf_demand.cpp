// E3 (§2.2, eq. 3): the processor-demand criterion for preemptive EDF.
// Regenerates the paper's observation that "when the utilisation approaches
// 1, t_max becomes very large": the busy-period horizon and the number of
// deadline checkpoints both blow up as U → 1.
#include "common.hpp"

#include "core/busy_period.hpp"
#include "core/edf_feasibility.hpp"
#include "workload/generators.hpp"

namespace {

using namespace profisched;
using bench::Table;

constexpr int kSetsPerCell = 300;

void run_experiment() {
  bench::banner("E3", "EDF processor-demand test: horizon growth as U -> 1 (eq. 3)");

  std::printf("\nMean busy-period horizon and checkpoint count (%d sets per cell, n=6, D in [0.8T, T]):\n",
              kSetsPerCell);
  Table t({"U", "feasible%", "mean horizon", "mean checkpoints", "max checkpoints"});
  sim::Rng rng(7);
  for (const double u : {0.50, 0.70, 0.85, 0.92, 0.96, 0.98, 0.995}) {
    int feasible = 0;
    double horizon_sum = 0, cp_sum = 0;
    std::size_t cp_max = 0;
    int bounded = 0;
    for (int s = 0; s < kSetsPerCell; ++s) {
      workload::TaskSetParams p;
      p.n = 6;
      p.total_u = u;
      p.t_min = 100;
      p.t_max = 10'000;
      p.deadline_lo = 0.8;
      const TaskSet ts = workload::random_task_set(p, rng);
      const FeasibilityResult r = edf_preemptive_feasible(ts);
      feasible += r.feasible;
      if (r.horizon > 0) {
        horizon_sum += static_cast<double>(r.horizon);
        cp_sum += static_cast<double>(r.checkpoints);
        cp_max = std::max(cp_max, r.checkpoints);
        ++bounded;
      }
    }
    const double d = bounded > 0 ? bounded : 1;
    t.row({bench::fmt(u, 3), bench::pct(1.0 * feasible / kSetsPerCell),
           bench::fmt(horizon_sum / d, 0), bench::fmt(cp_sum / d, 1), std::to_string(cp_max)});
  }
  t.print();

  std::printf("\nPaper-literal vs refined demand function on the same sets:\n");
  Table f({"U", "literal accept", "refined accept", "literal-only accepts"});
  for (const double u : {0.85, 0.95, 0.99}) {
    int lit = 0, ref = 0, lit_only = 0;
    for (int s = 0; s < kSetsPerCell; ++s) {
      workload::TaskSetParams p;
      p.n = 6;
      p.total_u = u;
      p.deadline_lo = 0.8;
      const TaskSet ts = workload::random_task_set(p, rng);
      const bool a = edf_preemptive_feasible(ts, Formulation::PaperLiteral).feasible;
      const bool b = edf_preemptive_feasible(ts, Formulation::Refined).feasible;
      lit += a;
      ref += b;
      lit_only += (a && !b);
    }
    f.row({bench::fmt(u, 2), bench::pct(1.0 * lit / kSetsPerCell),
           bench::pct(1.0 * ref / kSetsPerCell), std::to_string(lit_only)});
  }
  f.print();
  std::printf("\nExpected shape: horizon and checkpoint counts explode as U -> 1; the\n"
              "literal ceil-form accepts a (small) superset — those extra accepts are\n"
              "optimistic, which is why the library defaults to the refined form.\n");
}

void BM_DemandTest(benchmark::State& state) {
  sim::Rng rng(9);
  workload::TaskSetParams p;
  p.n = 8;
  p.total_u = static_cast<double>(state.range(0)) / 100.0;
  p.deadline_lo = 0.8;
  const TaskSet ts = workload::random_task_set(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(edf_preemptive_feasible(ts).feasible);
}
BENCHMARK(BM_DemandTest)->Arg(70)->Arg(90)->Arg(98);

}  // namespace

BENCH_MAIN(run_experiment)
