// common.hpp — shared infrastructure for the google-benchmark experiment
// benches (e01–e17).
//
// Every bench binary regenerates one experiment from DESIGN.md §3: it prints
// the experiment's table(s) to stdout (the "rows/series the paper reports"),
// then runs its google-benchmark timings. The custom main in BENCH_MAIN
// sequences the two. The table/formatting helpers live in bench_util.hpp,
// shared with the (gbench-free) bench_runner regression harness.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

/// Experiment entry point: print the tables, then run the registered
/// google-benchmark timings.
#define BENCH_MAIN(experiment_fn)                           \
  int main(int argc, char** argv) {                         \
    experiment_fn();                                        \
    ::benchmark::Initialize(&argc, argv);                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                  \
    ::benchmark::Shutdown();                                \
    return 0;                                               \
  }
