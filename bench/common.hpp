// common.hpp — shared infrastructure for the experiment benches.
//
// Every bench binary regenerates one experiment from DESIGN.md §3: it prints
// the experiment's table(s) to stdout (the "rows/series the paper reports"),
// then runs its google-benchmark timings. The custom main in BENCH_MAIN
// sequences the two.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/time_types.hpp"

namespace profisched::bench {

/// Fixed-width plain-text table, printed as the experiment's output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Add one row; each cell already formatted.
  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    const auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string{};
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}
inline std::string fmt_t(Ticks v) { return v == kNoBound ? "unbounded" : std::to_string(v); }
inline std::string pct(double ratio) { return fmt(100.0 * ratio, 1) + "%"; }
inline std::string ms_from_ticks(Ticks v, Ticks ticks_per_ms = 500) {
  return fmt(static_cast<double>(v) / static_cast<double>(ticks_per_ms), 2);
}

inline void banner(const char* experiment, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment, title);
  std::printf("================================================================\n");
}

}  // namespace profisched::bench

/// Experiment entry point: print the tables, then run the registered
/// google-benchmark timings.
#define BENCH_MAIN(experiment_fn)                           \
  int main(int argc, char** argv) {                         \
    experiment_fn();                                        \
    ::benchmark::Initialize(&argc, argv);                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                  \
    ::benchmark::Shutdown();                                \
    return 0;                                               \
  }
