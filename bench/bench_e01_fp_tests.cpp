// E1 (§2.1): utilization-based tests vs exact response-time analysis for
// fixed-priority RM scheduling. Regenerates the classic acceptance-ratio
// curve: Liu–Layland drops toward ln 2 as n grows; the hyperbolic bound sits
// between; the Joseph–Pandya RTA is exact and dominates both.
#include "common.hpp"

#include "core/schedulability.hpp"
#include "core/utilization.hpp"
#include "workload/generators.hpp"

namespace {

using namespace profisched;
using bench::Table;

constexpr int kSetsPerCell = 400;

void run_experiment() {
  bench::banner("E1", "Liu-Layland / hyperbolic bound / exact RTA acceptance ratios (RM, D=T)");

  std::printf("\nLeast upper bound n(2^(1/n)-1):\n");
  Table bounds({"n", "LL bound"});
  for (const std::size_t n : {1u, 2u, 3u, 4u, 8u, 16u, 64u}) {
    bounds.row({std::to_string(n), bench::fmt(liu_layland_bound(n), 4)});
  }
  bounds.print();

  std::printf("\nAcceptance ratio vs utilization (%d UUniFast sets per cell):\n", kSetsPerCell);
  Table t({"n", "U", "LL accept", "hyperbolic", "exact RTA"});
  sim::Rng rng(20'260'612);
  for (const std::size_t n : {3u, 6u, 12u}) {
    for (double u = 0.65; u <= 1.001; u += 0.05) {
      int ll = 0, hb = 0, rta = 0;
      for (int s = 0; s < kSetsPerCell; ++s) {
        workload::TaskSetParams p;
        p.n = n;
        p.total_u = u;
        p.t_min = 100;
        p.t_max = 10'000;
        const TaskSet ts = workload::random_task_set(p, rng);
        ll += liu_layland_test(ts);
        hb += hyperbolic_bound_test(ts);
        rta += analyze(ts, Policy::RateMonotonic).schedulable;
      }
      t.row({std::to_string(n), bench::fmt(u, 2), bench::pct(1.0 * ll / kSetsPerCell),
             bench::pct(1.0 * hb / kSetsPerCell), bench::pct(1.0 * rta / kSetsPerCell)});
    }
  }
  t.print();
  std::printf("\nExpected shape: LL <= hyperbolic <= RTA for every cell; LL collapses\n"
              "first as U approaches 1, RTA keeps accepting harmonic-friendly sets.\n");
}

void BM_ExactRtaAnalysis(benchmark::State& state) {
  sim::Rng rng(1);
  workload::TaskSetParams p;
  p.n = static_cast<std::size_t>(state.range(0));
  p.total_u = 0.8;
  const TaskSet ts = workload::random_task_set(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(ts, Policy::RateMonotonic).schedulable);
  }
}
BENCHMARK(BM_ExactRtaAnalysis)->Arg(4)->Arg(16)->Arg(64);

void BM_UtilizationTest(benchmark::State& state) {
  sim::Rng rng(1);
  workload::TaskSetParams p;
  p.n = 64;
  p.total_u = 0.8;
  const TaskSet ts = workload::random_task_set(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(liu_layland_test(ts));
}
BENCHMARK(BM_UtilizationTest);

}  // namespace

BENCH_MAIN(run_experiment)
