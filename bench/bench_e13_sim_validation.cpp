// E13 (cross-cutting): simulator-vs-analysis validation. For every policy and
// a battery of generated networks with adversarial phasing, reports the
// largest observed/bound ratio — all ratios must stay at or below 1.0, and
// ratios near 1.0 show the bounds are tight, not just safe.
#include "common.hpp"

#include "profibus/dispatching.hpp"
#include "sim/network_sim.hpp"
#include "workload/generators.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

struct Ratios {
  double worst_response_ratio = 0;
  double worst_trr_ratio = 0;
  std::uint64_t misses_when_schedulable = 0;
  int networks = 0;
};

void accumulate(const Network& net, ApPolicy policy, std::uint64_t seed, Ratios& out) {
  const NetworkAnalysis a = analyze_network(net, policy);

  sim::SimConfig cfg;
  cfg.net = net;
  cfg.policy = policy;
  cfg.horizon = std::min<Ticks>(t_cycle(net) * 80, 20'000'000);
  cfg.seed = seed;
  const sim::SimReport r = sim::simulate(cfg);

  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    out.worst_trr_ratio = std::max(out.worst_trr_ratio, static_cast<double>(r.token[k].max_trr) /
                                                            static_cast<double>(a.tcycle));
    for (std::size_t i = 0; i < net.masters[k].nh(); ++i) {
      const Ticks bound = a.masters[k].streams[i].response;
      if (bound == kNoBound) continue;
      out.worst_response_ratio =
          std::max(out.worst_response_ratio, static_cast<double>(r.hp[k][i].max_response) /
                                                 static_cast<double>(bound));
    }
  }
  if (a.schedulable) out.misses_when_schedulable += r.total_misses();
  ++out.networks;
}

void run_experiment() {
  bench::banner("E13", "validation: observed/bound ratios across policies and networks");

  std::printf("\n40 random networks per policy + the two named scenarios, synchronous\n"
              "release, worst-case cycle durations (the analyses' adversarial regime):\n");
  Table t({"policy", "networks", "max R_obs/R_bound", "max TRR/T_cycle",
           "misses when analysis says schedulable"});
  for (const ApPolicy policy : {ApPolicy::Fcfs, ApPolicy::Dm, ApPolicy::Edf}) {
    Ratios ratios;
    sim::Rng rng(1'000 + static_cast<std::uint64_t>(policy));
    for (int n = 0; n < 40; ++n) {
      workload::NetworkParams p;
      p.n_masters = 1 + static_cast<std::size_t>(rng.uniform(2));
      p.streams_per_master = 2 + static_cast<std::size_t>(rng.uniform(3));
      p.deadline_lo = 0.4;
      const workload::GeneratedNetwork g = workload::random_network(p, rng);
      accumulate(g.net, policy, rng.next(), ratios);
    }
    accumulate(workload::scenarios::factory_cell(), policy, 99, ratios);
    accumulate(workload::scenarios::tight_deadline_mix(), policy, 98, ratios);
    t.row({std::string(to_string(policy)), std::to_string(ratios.networks),
           bench::fmt(ratios.worst_response_ratio), bench::fmt(ratios.worst_trr_ratio),
           std::to_string(ratios.misses_when_schedulable)});
  }
  t.print();
  std::printf("\nExpected shape: every ratio <= 1.000 and the miss column identically 0\n"
              "(a violation would falsify the corresponding analysis); FCFS ratios run\n"
              "closest to 1 because eq. 11's worst case is the easiest to realize.\n");
}

void BM_FullValidationRun(benchmark::State& state) {
  const Network net = workload::scenarios::factory_cell();
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.net = net;
    cfg.policy = ApPolicy::Dm;
    cfg.horizon = 500'000;
    benchmark::DoNotOptimize(sim::simulate(cfg).events);
  }
}
BENCHMARK(BM_FullValidationRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCH_MAIN(run_experiment)
