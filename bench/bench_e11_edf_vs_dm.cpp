// E11 (§4.3, eqs. 17–18) — HEADLINE, part 2: the EDF-ordered AP queue vs the
// DM-ordered one (and FCFS). EDF's per-request deadline windows admit stream
// sets whose static DM ranking overloads some stream.
#include "common.hpp"

#include "engine/aggregate.hpp"
#include "profibus/dispatching.hpp"
#include "workload/generators.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

void regression_anchor() {
  // The randomized-search counterexample from the test suite: DM misses,
  // EDF fits (see tests/profibus/test_edf_analysis.cpp).
  Network net;
  net.ttr = 2'626;
  Master m;
  m.high_streams = {
      MessageStream{.Ch = 387, .D = 11'600, .T = 13'573, .J = 0, .name = "s0"},
      MessageStream{.Ch = 474, .D = 7'464, .T = 9'790, .J = 0, .name = "s1"},
      MessageStream{.Ch = 482, .D = 20'907, .T = 26'794, .J = 0, .name = "s2"},
      MessageStream{.Ch = 329, .D = 20'158, .T = 22'344, .J = 0, .name = "s3"},
      MessageStream{.Ch = 309, .D = 13'770, .T = 31'006, .J = 0, .name = "s4"},
  };
  net.masters = {m};

  const NetworkAnalysis fcfs = analyze_network(net, ApPolicy::Fcfs);
  const NetworkAnalysis dm = analyze_network(net, ApPolicy::Dm);
  const NetworkAnalysis edf = analyze_network(net, ApPolicy::Edf);

  std::printf("\nAnchor set (DM misses, EDF fits) — per-stream bounds in ticks:\n");
  Table t({"stream", "D", "T", "R FCFS", "R DM", "R EDF"});
  for (std::size_t i = 0; i < net.masters[0].nh(); ++i) {
    const auto& s = net.masters[0].high_streams[i];
    t.row({s.name, bench::fmt_t(s.D), bench::fmt_t(s.T),
           bench::fmt_t(fcfs.masters[0].streams[i].response),
           bench::fmt_t(dm.masters[0].streams[i].response),
           bench::fmt_t(edf.masters[0].streams[i].response)});
  }
  t.print();
  std::printf("Set schedulable: FCFS=%s DM=%s EDF=%s\n", fcfs.schedulable ? "yes" : "NO",
              dm.schedulable ? "yes" : "NO", edf.schedulable ? "yes" : "NO");
}

void acceptance_sweep() {
  std::printf("\nAcceptance across 400 random single-master networks per cell\n"
              "(nh=5, short periods, deadlines in [beta_lo*T, T], fixed T_TR = 3000 —\n"
              "near-critical load, where the orderings actually separate) —\n"
              "batched through the engine:\n");
  engine::SweepSpec spec;
  spec.base.n_masters = 1;
  spec.base.streams_per_master = 5;
  spec.base.t_min = 8'000;
  spec.base.t_max = 40'000;
  spec.base.ttr = 3'000;
  for (const double beta : {0.8, 0.6, 0.4, 0.25}) {
    spec.points.push_back(engine::SweepPoint{0.0, beta, 1.0});
  }
  spec.scenarios_per_point = 400;
  spec.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  spec.seed = 13;
  engine::SweepRunner runner;
  const engine::SweepResult result = runner.run(spec);
  const engine::SweepCurves curves = engine::aggregate(spec, result);

  const std::vector<std::size_t> edf_only =
      engine::count_exclusive(spec, result, engine::Policy::Edf, engine::Policy::Dm);
  const std::vector<std::size_t> dm_only =
      engine::count_exclusive(spec, result, engine::Policy::Dm, engine::Policy::Edf);

  Table t({"beta_lo", "FCFS%", "DM%", "EDF%", "EDF-only vs DM", "DM-only vs EDF"});
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    t.row({bench::fmt(spec.points[i].beta_lo, 2), bench::pct(curves.points[i].ratio(0)),
           bench::pct(curves.points[i].ratio(1)), bench::pct(curves.points[i].ratio(2)),
           std::to_string(edf_only[i]), std::to_string(dm_only[i])});
  }
  t.print();
  std::printf("(%zu scenarios, %u threads, %.3f s; timing memo %zu hits / %zu misses)\n",
              result.outcomes.size(), runner.threads(), result.elapsed_s, result.memo_hits,
              result.memo_misses);
}

void tcycle_method_ablation() {
  std::printf("\nAblation: uniform eq.-14 T_cycle vs per-master refined T_cycle\n"
              "(factory_cell, EDF queue):\n");
  const Network net = workload::scenarios::factory_cell();
  const NetworkAnalysis paper = analyze_edf(net, TcycleMethod::PaperEq13);
  const NetworkAnalysis refined = analyze_edf(net, TcycleMethod::PerMasterRefined);
  Table t({"master", "worst R (eq.14)", "worst R (refined)", "gain"});
  for (std::size_t k = 0; k < net.n_masters(); ++k) {
    Ticks wp = 0, wr = 0;
    for (std::size_t i = 0; i < net.masters[k].nh(); ++i) {
      wp = std::max(wp, paper.masters[k].streams[i].response);
      wr = std::max(wr, refined.masters[k].streams[i].response);
    }
    t.row({net.masters[k].name, bench::fmt_t(wp), bench::fmt_t(wr),
           bench::pct(1.0 - static_cast<double>(wr) / static_cast<double>(wp))});
  }
  t.print();
}

void run_experiment() {
  bench::banner("E11", "HEADLINE: EDF vs DM application-process queues (eqs. 17-18 vs 16)");
  regression_anchor();
  acceptance_sweep();
  tcycle_method_ablation();
  std::printf("\nExpected shape: EDF%% >= DM%% >= FCFS%% in every row, the EDF-vs-DM gap\n"
              "widening with deadline spread; the refined T_cycle shaves a consistent\n"
              "few percent off every master's worst response.\n");
}

void BM_EdfNetworkAnalysis(benchmark::State& state) {
  sim::Rng rng(78);
  workload::NetworkParams p;
  p.n_masters = 2;
  p.streams_per_master = static_cast<std::size_t>(state.range(0));
  const workload::GeneratedNetwork g = workload::random_network(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(analyze_edf(g.net).schedulable);
}
BENCHMARK(BM_EdfNetworkAnalysis)->Arg(3)->Arg(6)->Arg(10);

}  // namespace

BENCH_MAIN(run_experiment)
