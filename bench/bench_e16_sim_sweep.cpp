// E16 (cross-cutting, at scale): analysis-vs-simulation acceptance curves
// through the parallel engine. The classic UUniFast validation picture: per
// utilization level, the fraction of scenarios the analysis ACCEPTS against
// the fraction the simulator observes running miss-free, plus the pessimism
// ratio (analytic bound / observed max). The analysis curve must always lie
// at or below the simulation curve — an accepted-but-missing scenario or a
// violated bound would falsify the corresponding analysis.
#include "common.hpp"

#include "engine/sim_aggregate.hpp"
#include "engine/sweep_runner.hpp"

namespace {

using namespace profisched;
using bench::Table;

engine::SimSweepSpec make_spec(std::size_t scenarios_per_point) {
  engine::SimSweepSpec spec;
  spec.sweep.base.n_masters = 2;
  spec.sweep.base.streams_per_master = 4;
  spec.sweep.base.ttr = 3'000;
  for (const double u : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
    spec.sweep.points.push_back(engine::SweepPoint{u, 0.5, 1.0});
  }
  spec.sweep.scenarios_per_point = scenarios_per_point;
  spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  spec.sweep.seed = 16;
  spec.replications = 2;  // synchronous + one randomly-phased run
  return spec;
}

void acceptance_curves() {
  std::printf("\nAnalysis-accept%% vs simulation miss-free%% per utilization level\n"
              "(2 masters x 4 streams, worst-case cycle durations, 2 replications\n"
              "per scenario: synchronous + random phases):\n");
  const engine::SimSweepSpec spec = make_spec(150);
  engine::SweepRunner runner;
  const engine::CombinedResult result = runner.run_combined(spec);
  const engine::ConsistencyTable table = engine::consistency_table(spec, result);

  // Bucket the per-point ratios in one pass (a per-point rescan is
  // O(points x scenarios)).
  const std::size_t n_pol = spec.sweep.policies.size();
  const std::size_t n_pts = spec.sweep.points.size();
  std::vector<std::size_t> accepted(n_pts * n_pol, 0), miss_free(n_pts * n_pol, 0),
      scenarios(n_pts, 0);
  for (const engine::CombinedOutcome& o : result.outcomes) {
    ++scenarios[o.sim.point];
    for (std::size_t p = 0; p < n_pol; ++p) {
      if (o.analytic_schedulable[p]) ++accepted[o.sim.point * n_pol + p];
      if (o.sim.misses[p] == 0 && o.sim.dropped[p] == 0) {
        ++miss_free[o.sim.point * n_pol + p];
      }
    }
  }
  Table t({"U", "FCFS an%", "FCFS sim%", "DM an%", "DM sim%", "EDF an%", "EDF sim%"});
  for (std::size_t pt = 0; pt < n_pts; ++pt) {
    const double n = scenarios[pt] == 0 ? 1.0 : static_cast<double>(scenarios[pt]);
    std::vector<std::string> row{bench::fmt(spec.sweep.points[pt].total_u, 1)};
    for (std::size_t p = 0; p < n_pol; ++p) {
      row.push_back(bench::pct(static_cast<double>(accepted[pt * n_pol + p]) / n));
      row.push_back(bench::pct(static_cast<double>(miss_free[pt * n_pol + p]) / n));
    }
    t.row(std::move(row));
  }
  t.print();

  double max_pessimism = 0.0, min_pessimism = 1e300;
  for (const engine::ConsistencyRow& r : table.rows) {
    const double p = r.pessimism();
    if (p > 0) {
      max_pessimism = std::max(max_pessimism, p);
      min_pessimism = std::min(min_pessimism, p);
    }
  }
  std::printf("\n%zu joined rows, %u threads, %.3f s; bound violations: %llu (must be 0);\n"
              "analysis-accepts-but-sim-misses: %zu (must be 0); pessimism ratio in "
              "[%.3f, %.3f]\n",
              table.rows.size(), runner.threads(), result.elapsed_s,
              static_cast<unsigned long long>(result.total_bound_violations()),
              table.accept_but_miss_count(), min_pessimism, max_pessimism);
  std::printf("Expected shape: every an%% <= its sim%% (the analysis is sufficient, the\n"
              "simulation cannot observe the worst case it bounds), both monotone down\n"
              "in U, and min pessimism near 1 where FCFS runs fully loaded.\n");
}

void sim_sweep_scaling() {
  std::printf("\nParallel simulation-sweep scaling (same spec, simulation only) —\n"
              "aggregate CSV is bit-identical for every thread count:\n");
  const engine::SimSweepSpec spec = make_spec(100);
  std::string reference_csv;
  double t1 = 0.0;
  Table t({"threads", "wall (s)", "sim-runs/s", "speedup", "bit-identical"});
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    engine::SweepRunner runner(threads);
    const engine::SimSweepResult result = runner.run_sim(spec);
    const std::string csv = engine::aggregate_sim(spec, result).to_csv();
    if (threads == 1) {
      reference_csv = csv;
      t1 = result.elapsed_s;
    }
    const double runs = static_cast<double>(result.outcomes.size() *
                                            spec.sweep.policies.size() * spec.replications);
    t.row({std::to_string(threads), bench::fmt(result.elapsed_s),
           bench::fmt(runs / (result.elapsed_s > 0 ? result.elapsed_s : 1.0), 0),
           bench::fmt(t1 / (result.elapsed_s > 0 ? result.elapsed_s : 1.0), 2),
           csv == reference_csv ? "yes" : "NO"});
  }
  t.print();
}

void run_experiment() {
  bench::banner("E16", "analysis vs simulation acceptance curves through the engine");
  acceptance_curves();
  sim_sweep_scaling();
}

void BM_SimSweepAllCores(benchmark::State& state) {
  const engine::SimSweepSpec spec = make_spec(30);
  engine::SweepRunner runner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run_sim(spec).outcomes.size());
  }
}
BENCHMARK(BM_SimSweepAllCores)->Unit(benchmark::kMillisecond);

}  // namespace

BENCH_MAIN(run_experiment)
