// E12 (§4.1–4.2): release-jitter inheritance and the end-to-end delay
// E = g + Q + C + d. Derives message jitter from an application task layer
// under both §4.1 task models, shows how sender-side interference propagates
// into the network bounds, and prints the full end-to-end decomposition.
#include "common.hpp"

#include "apptask/release_jitter.hpp"
#include "profibus/dispatching.hpp"
#include "profibus/end_to_end.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

// Application task layer for the tight_deadline_mix master: one sender per
// stream, CPU times in ticks of the host processor (same unit for clarity).
std::vector<apptask::SenderTask> senders_for(const Network& net, Ticks cpu_load_scale) {
  std::vector<apptask::SenderTask> out;
  for (const MessageStream& s : net.masters[0].high_streams) {
    out.push_back(apptask::SenderTask{
        .C_pre = 40 * cpu_load_scale,
        .C_post = 60 * cpu_load_scale,
        .D = s.D,
        .T = s.T,
    });
  }
  return out;
}

void jitter_propagation() {
  std::printf("\nSender-task interference -> release jitter -> message response\n"
              "(tight_deadline_mix, DM queue, model A, DM-scheduled host CPU):\n");
  Table t({"CPU scale", "J(lax.flow-rate)", "R DM tight", "R DM laxest", "set sched?"});
  // Scales chosen to cross the interesting thresholds: at 60 the host CPU is
  // ~80 % utilized, at 72 it is near saturation and the inherited jitters
  // exceed the hp streams' periods, inflating every lower-priority message
  // bound until the set breaks.
  for (const Ticks scale : {1, 30, 60, 72}) {
    Network net = workload::scenarios::tight_deadline_mix();
    const apptask::JitterResult jr = apptask::derive_release_jitter(
        senders_for(net, scale), apptask::TaskModel::AutoSuspend, Policy::DeadlineMonotonic);
    for (std::size_t i = 0; i < net.masters[0].nh(); ++i) {
      net.masters[0].high_streams[i].J = jr.jitter[i];
    }
    const NetworkAnalysis a = analyze_network(net, ApPolicy::Dm);
    t.row({bench::fmt_t(scale), bench::fmt_t(jr.jitter.back()),
           bench::fmt_t(a.masters[0].streams[0].response),
           bench::fmt_t(a.masters[0].streams.back().response),
           a.schedulable ? "yes" : "NO"});
  }
  t.print();
}

void model_comparison() {
  std::printf("\nTask model A (auto-suspend) vs model B (separate tasks) jitters:\n");
  const Network net = workload::scenarios::tight_deadline_mix();
  const auto senders = senders_for(net, 20);
  const apptask::JitterResult a = apptask::derive_release_jitter(
      senders, apptask::TaskModel::AutoSuspend, Policy::DeadlineMonotonic);
  const apptask::JitterResult b = apptask::derive_release_jitter(
      senders, apptask::TaskModel::SeparateTasks, Policy::DeadlineMonotonic);
  Table t({"stream", "J model A", "J model B", "g model A"});
  for (std::size_t i = 0; i < senders.size(); ++i) {
    t.row({net.masters[0].high_streams[i].name, bench::fmt_t(a.jitter[i]),
           bench::fmt_t(b.jitter[i]), bench::fmt_t(a.generation[i])});
  }
  t.print();
}

void e2e_decomposition() {
  std::printf("\nEnd-to-end decomposition E = g + (Q + C) + d for factory_cell robot\n"
              "streams (DM queue, model A, CPU scale 20, d = 100 ticks):\n");
  Network net = workload::scenarios::factory_cell();
  // Sender layer on the robot controller (master index 1).
  std::vector<apptask::SenderTask> senders;
  for (const MessageStream& s : net.masters[1].high_streams) {
    senders.push_back(apptask::SenderTask{.C_pre = 800, .C_post = 1'200, .D = s.D, .T = s.T});
  }
  const apptask::JitterResult jr = apptask::derive_release_jitter(
      senders, apptask::TaskModel::AutoSuspend, Policy::DeadlineMonotonic);
  for (std::size_t i = 0; i < net.masters[1].nh(); ++i) {
    net.masters[1].high_streams[i].J = jr.jitter[i];
  }
  const NetworkAnalysis a = analyze_network(net, ApPolicy::Dm);

  Table t({"stream", "g", "Q", "Q+C bound", "d", "E", "D", "meets?"});
  bool all_ok = true;
  for (std::size_t i = 0; i < net.masters[1].nh(); ++i) {
    const auto& s = net.masters[1].high_streams[i];
    const HostDelays host{.generation = jr.generation[i], .delivery = 100};
    const Ticks e = end_to_end_bound(host, a.masters[1].streams[i]);
    const bool ok = e != kNoBound && e <= s.D;
    all_ok &= ok;
    t.row({s.name, bench::fmt_t(host.generation), bench::fmt_t(a.masters[1].streams[i].Q),
           bench::fmt_t(a.masters[1].streams[i].response), bench::fmt_t(host.delivery),
           bench::fmt_t(e), bench::fmt_t(s.D), ok ? "yes" : "NO"});
  }
  t.print();
  std::printf("End-to-end schedulable (robot master): %s\n", all_ok ? "yes" : "NO");
}

void run_experiment() {
  bench::banner("E12", "release-jitter inheritance and end-to-end delay (sections 4.1-4.2)");
  jitter_propagation();
  model_comparison();
  e2e_decomposition();
  std::printf("\nExpected shape: jitter grows with sender-side CPU load and inflates the\n"
              "*other* streams' Q; model A >= model B jitter; E decomposes additively\n"
              "and the set stays schedulable while host delays fit the slack.\n");
}

void BM_JitterDerivation(benchmark::State& state) {
  const Network net = workload::scenarios::tight_deadline_mix();
  const auto senders = senders_for(net, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apptask::derive_release_jitter(
        senders, apptask::TaskModel::AutoSuspend, Policy::DeadlineMonotonic));
  }
}
BENCHMARK(BM_JitterDerivation);

}  // namespace

BENCH_MAIN(run_experiment)
