// E14 (extensions; DESIGN.md "ablation benches for the design choices"):
//  (a) DM vs Audsley-OPA priority assignment at the message level — DM is
//      the paper's choice, but it is not optimal for this blocking-afflicted
//      analysis once stream periods diverge from deadlines;
//  (b) paper-literal vs refined formulations across the analyses;
//  (c) sensitivity margins of the named scenarios (how close to the edge the
//      shipped configurations run).
#include "common.hpp"

#include "core/sensitivity.hpp"
#include "engine/aggregate.hpp"
#include "profibus/dm_analysis.hpp"
#include "profibus/priority_assignment.hpp"
#include "workload/generators.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

void opa_vs_dm() {
  std::printf("\n(a) DM vs OPA message-priority assignment, 500 random single-master\n"
              "networks per cell (short periods push DM off-optimal) — batched\n"
              "through the engine:\n");
  engine::SweepSpec spec;
  spec.base.n_masters = 1;
  spec.base.streams_per_master = 4;
  spec.base.t_min = 8'000;
  spec.base.t_max = 60'000;
  spec.base.ttr = 3'000;
  for (const double beta : {0.8, 0.5, 0.3}) {
    spec.points.push_back(engine::SweepPoint{0.0, beta, 1.0});
  }
  spec.scenarios_per_point = 500;
  spec.policies = {engine::Policy::Dm, engine::Policy::Opa};
  spec.seed = 900;
  engine::SweepRunner runner;
  const engine::SweepResult result = runner.run(spec);
  const engine::SweepCurves curves = engine::aggregate(spec, result);

  const std::vector<std::size_t> opa_only =
      engine::count_exclusive(spec, result, engine::Policy::Opa, engine::Policy::Dm);
  const std::vector<std::size_t> dm_only =
      engine::count_exclusive(spec, result, engine::Policy::Dm, engine::Policy::Opa);

  Table t({"beta_lo", "DM sched%", "OPA sched%", "OPA-only", "DM-only (must be 0)"});
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    t.row({bench::fmt(spec.points[i].beta_lo, 1), bench::pct(curves.points[i].ratio(0)),
           bench::pct(curves.points[i].ratio(1)), std::to_string(opa_only[i]),
           std::to_string(dm_only[i])});
  }
  t.print();

  // Random draws rarely land in the niche; the structural family does:
  // a short-period mid-deadline stream that DM ranks above the laxest one,
  // whose window then collects two of its slots (T_cycle = 2300 here).
  std::printf("\n    structural family: s1(D=5750,T=100k) s2(D=7360,T=t2) s3(D=8050,T=100k):\n");
  Table f({"t2 (s2 period)", "DM", "OPA"});
  for (const Ticks t2 : {3'000, 3'450, 4'200, 4'800, 9'000}) {
    Network net;
    net.ttr = 2'000;
    Master m;
    m.high_streams = {
        MessageStream{.Ch = 300, .D = 5'750, .T = 100'000, .J = 0, .name = "s1"},
        MessageStream{.Ch = 300, .D = 7'360, .T = t2, .J = 0, .name = "s2"},
        MessageStream{.Ch = 300, .D = 8'050, .T = 100'000, .J = 0, .name = "s3"},
    };
    net.masters = {m};
    f.row({bench::fmt_t(t2), analyze_dm(net).schedulable ? "yes" : "NO",
           audsley_stream_orders(net).has_value() ? "yes" : "NO"});
  }
  f.print();
}

void formulation_ablation() {
  std::printf("\n(b) paper-literal vs refined formulation, acceptance over 500 random\n"
              "task sets per cell (NP-DM, D in [0.7T, T]):\n");
  Table t({"U", "literal sched%", "refined sched%", "verdicts differ"});
  for (const double u : {0.5, 0.7, 0.85}) {
    sim::Rng rng(static_cast<std::uint64_t>(u * 100) + 800);
    int lit = 0, ref = 0, differ = 0;
    for (int s = 0; s < 500; ++s) {
      workload::TaskSetParams p;
      p.n = 5;
      p.total_u = u;
      p.deadline_lo = 0.7;
      const TaskSet ts = workload::random_task_set(p, rng);
      const bool a = analyze(ts, Policy::NpDeadlineMonotonic, Formulation::PaperLiteral)
                         .schedulable;
      const bool b = analyze(ts, Policy::NpDeadlineMonotonic, Formulation::Refined).schedulable;
      lit += a;
      ref += b;
      differ += (a != b);
    }
    t.row({bench::fmt(u, 2), bench::pct(lit / 500.0), bench::pct(ref / 500.0),
           std::to_string(differ)});
  }
  t.print();

  // The per-task difference is one tick of blocking; on deadline boundaries
  // it flips the verdict (the hand example from the test suite):
  const TaskSet boundary{{
      Task{.C = 1, .D = 3, .T = 4, .J = 0, .name = ""},
      Task{.C = 1, .D = 5, .T = 5, .J = 0, .name = ""},
      Task{.C = 3, .D = 9, .T = 9, .J = 0, .name = ""},
  }};
  std::printf("\n    boundary set {C,D,T} = {1,3,4},{1,5,5},{3,9,9}: literal %s, refined %s\n",
              analyze(boundary, Policy::NpDeadlineMonotonic, Formulation::PaperLiteral)
                      .schedulable
                  ? "accepts"
                  : "REJECTS",
              analyze(boundary, Policy::NpDeadlineMonotonic, Formulation::Refined).schedulable
                  ? "accepts"
                  : "REJECTS");
}

void scenario_margins() {
  std::printf("\n(c) sensitivity margins of the shipped scenarios (message level is\n"
              "exercised via the uniprocessor analyses on the robot master's inherited\n"
              "task view; network margins via T_TR room from E9):\n");
  Table t({"task set", "policy", "breakdown scaling", "breakdown U"});
  const struct {
    const char* name;
    TaskSet ts;
  } sets[] = {
      {"classic {3/7,3/12,5/20}", TaskSet{{
                                      Task{.C = 3, .D = 7, .T = 7, .J = 0, .name = ""},
                                      Task{.C = 3, .D = 12, .T = 12, .J = 0, .name = ""},
                                      Task{.C = 5, .D = 20, .T = 20, .J = 0, .name = ""},
                                  }}},
      {"light {1/10,2/25}", TaskSet{{
                                Task{.C = 1, .D = 10, .T = 10, .J = 0, .name = ""},
                                Task{.C = 2, .D = 25, .T = 25, .J = 0, .name = ""},
                            }}},
  };
  for (const auto& item : sets) {
    for (const Policy policy : {Policy::DeadlineMonotonic, Policy::Edf}) {
      const auto test = test_for(policy);
      const auto q = sensitivity::breakdown_scaling(item.ts, test);
      t.row({item.name, std::string(to_string(policy)),
             q ? bench::fmt(static_cast<double>(q.value) / 1024.0, 3) : "none",
             q ? bench::fmt(sensitivity::utilization_at_scale(item.ts, q.value), 3) : "none"});
    }
  }
  t.print();
}

void run_experiment() {
  bench::banner("E14", "ablations: OPA vs DM, formulations, sensitivity margins");
  opa_vs_dm();
  formulation_ablation();
  scenario_margins();
  std::printf("\nExpected shape: OPA-only > 0 with 'DM-only' identically 0 (OPA is\n"
              "optimal); formulation verdicts differ only on a thin boundary slice;\n"
              "EDF breakdown scaling >= DM's on every set.\n");
}

void BM_MessageOpa(benchmark::State& state) {
  sim::Rng rng(901);
  workload::NetworkParams p;
  p.n_masters = 1;
  p.streams_per_master = static_cast<std::size_t>(state.range(0));
  const workload::GeneratedNetwork g = workload::random_network(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(audsley_stream_orders(g.net).has_value());
}
BENCHMARK(BM_MessageOpa)->Arg(4)->Arg(8)->Arg(12);

void BM_BreakdownScaling(benchmark::State& state) {
  sim::Rng rng(902);
  workload::TaskSetParams p;
  p.n = 6;
  p.total_u = 0.5;
  const TaskSet ts = workload::random_task_set(p, rng);
  const auto test = test_for(Policy::DeadlineMonotonic);
  for (auto _ : state) benchmark::DoNotOptimize(sensitivity::breakdown_scaling(ts, test));
}
BENCHMARK(BM_BreakdownScaling);

}  // namespace

BENCH_MAIN(run_experiment)
