// E6 (§2.2, eqs. 9–10): George et al.'s non-preemptive EDF response-time
// analysis. Quantifies the non-preemption penalty — the response inflation
// relative to preemptive EDF — which is exactly the effect the PROFIBUS
// message analysis of §4.3 inherits (message cycles are non-preemptable).
#include "common.hpp"

#include "core/response_time_edf.hpp"
#include "workload/generators.hpp"

namespace {

using namespace profisched;
using bench::Table;

constexpr int kSetsPerCell = 120;

void run_experiment() {
  bench::banner("E6", "non-preemptive EDF response times vs preemptive (eqs. 9-10 vs 6-8)");

  std::printf("\nNon-preemption penalty (%d sets per cell, n=4, D in [0.7T, T]):\n",
              kSetsPerCell);
  Table t({"U", "mean (R_np - R_p)/C_max", "max (R_np - R_p)/C_max", "NP sched%",
           "P sched%"});
  sim::Rng rng(23);
  for (const double u : {0.40, 0.55, 0.70, 0.85}) {
    double penalty_sum = 0, penalty_max = 0;
    int np_ok = 0, p_ok = 0, samples = 0;
    for (int s = 0; s < kSetsPerCell; ++s) {
      workload::TaskSetParams p;
      p.n = 4;
      p.total_u = u;
      p.t_min = 50;
      p.t_max = 2'000;
      p.deadline_lo = 0.7;
      const TaskSet ts = workload::random_task_set(p, rng);
      const EdfAnalysis pre = analyze_preemptive_edf(ts);
      const EdfAnalysis np = analyze_nonpreemptive_edf(ts);
      np_ok += np.schedulable;
      p_ok += pre.schedulable;
      const double cmax = static_cast<double>(ts.max_execution());
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (!pre.per_task[i].converged || !np.per_task[i].converged) continue;
        const double pen =
            static_cast<double>(np.per_task[i].response - pre.per_task[i].response) / cmax;
        penalty_sum += pen;
        penalty_max = std::max(penalty_max, pen);
        ++samples;
      }
    }
    const double d = samples > 0 ? samples : 1;
    t.row({bench::fmt(u, 2), bench::fmt(penalty_sum / d), bench::fmt(penalty_max),
           bench::pct(1.0 * np_ok / kSetsPerCell), bench::pct(1.0 * p_ok / kSetsPerCell)});
  }
  t.print();

  std::printf("\nPer-task anatomy on a fixed 3-task set (C, D, T shown):\n");
  const TaskSet ts{{
      Task{.C = 2, .D = 10, .T = 15, .J = 0, .name = "short"},
      Task{.C = 5, .D = 25, .T = 40, .J = 0, .name = "mid"},
      Task{.C = 9, .D = 60, .T = 90, .J = 0, .name = "long"},
  }};
  const EdfAnalysis pre = analyze_preemptive_edf(ts);
  const EdfAnalysis np = analyze_nonpreemptive_edf(ts);
  Table a({"task", "C", "D", "T", "R preemptive", "R non-preemptive", "critical a (np)"});
  for (std::size_t i = 0; i < ts.size(); ++i) {
    a.row({ts[i].name, bench::fmt_t(ts[i].C), bench::fmt_t(ts[i].D), bench::fmt_t(ts[i].T),
           bench::fmt_t(pre.per_task[i].response), bench::fmt_t(np.per_task[i].response),
           bench::fmt_t(np.per_task[i].critical_offset)});
  }
  a.print();
  std::printf("\nExpected shape: penalties are positive and bounded by roughly one\n"
              "C_max (a single blocking); short-deadline tasks pay the most.\n");
}

void BM_NpEdfRta(benchmark::State& state) {
  sim::Rng rng(29);
  workload::TaskSetParams p;
  p.n = static_cast<std::size_t>(state.range(0));
  p.total_u = 0.7;
  p.t_min = 50;
  p.t_max = 1'000;
  p.deadline_lo = 0.8;
  const TaskSet ts = workload::random_task_set(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(analyze_nonpreemptive_edf(ts).schedulable);
}
BENCHMARK(BM_NpEdfRta)->Arg(3)->Arg(5)->Arg(8);

}  // namespace

BENCH_MAIN(run_experiment)
