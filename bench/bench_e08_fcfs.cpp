// E8 (§3.2, eqs. 11–12): the FCFS worst-case response R = nh·T_cycle, checked
// against the simulator with the adversarial synchronous release. The bound
// is deadline- and period-blind: the table shows it depends only on nh.
#include "common.hpp"

#include "profibus/fcfs_analysis.hpp"
#include "sim/network_sim.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

Network make_net(std::size_t nh, Ticks ttr = 20'000) {
  Network net;
  net.ttr = ttr;
  Master m;
  for (std::size_t i = 0; i < nh; ++i) {
    m.high_streams.push_back(MessageStream{
        .Ch = 600, .D = 1'000'000, .T = 300'000 + 10'000 * static_cast<Ticks>(i), .J = 0,
        .name = "s" + std::to_string(i)});
  }
  m.longest_low_cycle = 900;
  net.masters = {m};
  return net;
}

void run_experiment() {
  bench::banner("E8", "FCFS worst-case response R = nh * T_cycle vs simulation (eqs. 11-12)");

  std::printf("\nAnalytic bound vs observed max response under synchronous release\n"
              "(single master, worst-case cycle durations):\n");
  Table t({"nh", "T_cycle", "bound nh*T_cycle", "sim max R", "sim/bound"});
  for (const std::size_t nh : {1u, 2u, 4u, 6u, 8u, 12u}) {
    const Network net = make_net(nh);
    const NetworkAnalysis a = analyze_fcfs(net);
    sim::SimConfig cfg;
    cfg.net = net;
    cfg.policy = ApPolicy::Fcfs;
    cfg.horizon = 3'000'000;
    const sim::SimReport r = sim::simulate(cfg);
    Ticks max_resp = 0;
    for (const auto& s : r.hp[0]) max_resp = std::max(max_resp, s.max_response);
    const Ticks bound = a.masters[0].streams[0].response;
    t.row({std::to_string(nh), bench::fmt_t(a.tcycle), bench::fmt_t(bound),
           bench::fmt_t(max_resp),
           bench::fmt(static_cast<double>(max_resp) / static_cast<double>(bound))});
  }
  t.print();

  std::printf("\nDeadline-blindness: same master, deadlines varied, bound unchanged:\n");
  Table d({"stream", "D", "T", "FCFS bound"});
  Network net = make_net(4);
  net.masters[0].high_streams[0].D = 50'000;
  net.masters[0].high_streams[1].D = 150'000;
  net.masters[0].high_streams[2].D = 400'000;
  net.masters[0].high_streams[3].D = 900'000;
  const NetworkAnalysis a = analyze_fcfs(net);
  for (std::size_t i = 0; i < 4; ++i) {
    d.row({net.masters[0].high_streams[i].name, bench::fmt_t(net.masters[0].high_streams[i].D),
           bench::fmt_t(net.masters[0].high_streams[i].T),
           bench::fmt_t(a.masters[0].streams[i].response)});
  }
  d.print();
  std::printf("\nExpected shape: the bound scales linearly with nh and is identical for\n"
              "every stream of the master; sim/bound <= 1, climbing toward 1 as nh\n"
              "grows (queue actually fills under synchronous release).\n");
}

void BM_FcfsAnalysis(benchmark::State& state) {
  const Network net = make_net(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(analyze_fcfs(net).schedulable);
}
BENCHMARK(BM_FcfsAnalysis)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCH_MAIN(run_experiment)
