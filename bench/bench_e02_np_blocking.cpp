// E2 (§2.1, eqs. 1–2): the cost of non-preemption under fixed priorities.
// Compares preemptive DM response times with non-preemptive ones (both the
// paper-literal and the refined formulation) and isolates the blocking
// factor's contribution.
#include "common.hpp"

#include <cmath>

#include "core/response_time_fp.hpp"
#include "core/schedulability.hpp"
#include "workload/generators.hpp"

namespace {

using namespace profisched;
using bench::Table;

constexpr int kSetsPerCell = 300;

void run_experiment() {
  bench::banner("E2", "preemptive vs non-preemptive fixed-priority response times (eqs. 1-2)");

  std::printf("\nMean worst-case response, normalized by deadline (%d sets per cell, n=5, D in [0.7T, T]):\n",
              kSetsPerCell);
  Table t({"U", "R/D preemptive", "R/D np-refined", "R/D np-literal", "sched% pre",
           "sched% np-ref", "sched% np-lit"});
  sim::Rng rng(42);
  for (double u = 0.30; u <= 0.91; u += 0.10) {
    double sum_pre = 0, sum_ref = 0, sum_lit = 0;
    int n_pre = 0, n_ref = 0, n_lit = 0;
    int samples = 0;
    for (int s = 0; s < kSetsPerCell; ++s) {
      workload::TaskSetParams p;
      p.n = 5;
      p.total_u = u;
      p.t_min = 100;
      p.t_max = 5'000;
      p.deadline_lo = 0.7;
      const TaskSet ts = workload::random_task_set(p, rng);
      const Verdict pre = analyze(ts, Policy::DeadlineMonotonic);
      const Verdict ref = analyze(ts, Policy::NpDeadlineMonotonic, Formulation::Refined);
      const Verdict lit = analyze(ts, Policy::NpDeadlineMonotonic, Formulation::PaperLiteral);
      n_pre += pre.schedulable;
      n_ref += ref.schedulable;
      n_lit += lit.schedulable;
      const double wp = pre.worst_normalized_response(ts);
      const double wr = ref.worst_normalized_response(ts);
      const double wl = lit.worst_normalized_response(ts);
      if (std::isfinite(wp) && std::isfinite(wr) && std::isfinite(wl)) {
        sum_pre += wp;
        sum_ref += wr;
        sum_lit += wl;
        ++samples;
      }
    }
    const double d = samples > 0 ? samples : 1;
    t.row({bench::fmt(u, 2), bench::fmt(sum_pre / d), bench::fmt(sum_ref / d),
           bench::fmt(sum_lit / d), bench::pct(1.0 * n_pre / kSetsPerCell),
           bench::pct(1.0 * n_ref / kSetsPerCell), bench::pct(1.0 * n_lit / kSetsPerCell)});
  }
  t.print();

  std::printf("\nBlocking factor anatomy (tight task vs one long lower-priority task):\n");
  Table b({"blocker C", "B literal", "B refined", "R tight (lit)", "R tight (ref)"});
  for (const Ticks c : {10, 50, 200, 800}) {
    const TaskSet ts{{
        Task{.C = 5, .D = 1'000, .T = 1'000, .J = 0, .name = "tight"},
        Task{.C = c, .D = 10'000, .T = 10'000, .J = 0, .name = "blocker"},
    }};
    const std::vector<std::size_t> lower{1};
    b.row({bench::fmt_t(c), bench::fmt_t(blocking_factor(ts, lower, Formulation::PaperLiteral)),
           bench::fmt_t(blocking_factor(ts, lower, Formulation::Refined)),
           bench::fmt_t(
               response_time_nonpreemptive(ts, 0, {}, lower, Formulation::PaperLiteral).response),
           bench::fmt_t(
               response_time_nonpreemptive(ts, 0, {}, lower, Formulation::Refined).response)});
  }
  b.print();
  std::printf("\nExpected shape: np-literal >= np-refined >= preemptive everywhere;\n"
              "the tight task's response grows linearly with the blocker's C.\n");
}

void BM_NpRta(benchmark::State& state) {
  sim::Rng rng(3);
  workload::TaskSetParams p;
  p.n = static_cast<std::size_t>(state.range(0));
  p.total_u = 0.7;
  p.deadline_lo = 0.8;
  const TaskSet ts = workload::random_task_set(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(ts, Policy::NpDeadlineMonotonic).schedulable);
  }
}
BENCHMARK(BM_NpRta)->Arg(5)->Arg(20)->Arg(50);

}  // namespace

BENCH_MAIN(run_experiment)
