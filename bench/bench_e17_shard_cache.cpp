// E17 (infrastructure, at scale): the distributed sweep subsystem. Two
// tables: (1) shard-count scaling — one sweep executed as K shard artifacts
// (serialized and merged exactly as separate machines would exchange them),
// reporting the makespan proxy (slowest shard) and verifying the merged
// output stays byte-identical to the single-process run; (2) warm-vs-cold
// persistent result cache — the same sweep re-run against a populated cache
// directory must be all hits and measurably faster, which is the acceptance
// criterion behind `profisched sweep --cache`.
#include "common.hpp"

#include <chrono>
#include <filesystem>

#include "dist/result_cache.hpp"
#include "dist/shard.hpp"
#include "engine/aggregate.hpp"

namespace {

using namespace profisched;
using bench::Table;

dist::ShardSpec make_spec(std::size_t scenarios_per_point) {
  dist::ShardSpec spec;
  spec.mode = dist::SweepMode::Analysis;
  spec.spec.sweep.base.n_masters = 2;
  spec.spec.sweep.base.streams_per_master = 4;
  spec.spec.sweep.base.ttr = 3'000;
  for (const double u : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    spec.spec.sweep.points.push_back(engine::SweepPoint{u, 0.5, 1.0});
  }
  spec.spec.sweep.scenarios_per_point = scenarios_per_point;
  spec.spec.sweep.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};
  spec.spec.sweep.seed = 17;
  return spec;
}

double now_minus(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void shard_scaling() {
  std::printf("\nShard-count scaling (one sweep split into K artifacts, run here\n"
              "sequentially; 'slowest shard' is the makespan a K-machine cluster\n"
              "would see; merged output must stay byte-identical to 1 process):\n");
  const dist::ShardSpec spec = make_spec(120);
  engine::SweepRunner single;
  const auto t0 = std::chrono::steady_clock::now();
  const std::string reference =
      engine::aggregate(spec.spec.sweep, single.run(spec.spec.sweep)).to_csv();
  const double single_s = now_minus(t0);

  Table t({"shards", "total (s)", "slowest shard (s)", "ideal speedup", "bit-identical"});
  for (const std::uint64_t k : {1ULL, 2ULL, 4ULL, 8ULL}) {
    dist::ShardRunner runner;
    std::vector<dist::ShardArtifact> artifacts;
    double total = 0.0, slowest = 0.0;
    for (std::uint64_t i = 0; i < k; ++i) {
      const auto s0 = std::chrono::steady_clock::now();
      const dist::ShardArtifact art = runner.run(spec, i, k);
      const double shard_s = now_minus(s0);
      total += shard_s;
      slowest = std::max(slowest, shard_s);
      artifacts.push_back(dist::ShardArtifact::from_text(art.to_text()));
    }
    const dist::MergedSweep merged = dist::merge_shards(artifacts);
    const std::string csv = engine::aggregate(spec.spec.sweep, merged.analysis).to_csv();
    t.row({std::to_string(k), bench::fmt(total), bench::fmt(slowest),
           bench::fmt(slowest > 0 ? single_s / slowest : 0.0, 2),
           csv == reference ? "yes" : "NO"});
  }
  t.print();
  std::printf("Expected shape: speedup grows with K but sublinearly at small K —\n"
              "contiguous id ranges inherit the u-grid's cost gradient (high-u\n"
              "scenarios analyze much slower), so the last shard dominates the\n"
              "makespan. Deployments oversplit (K >> machines) and let machines\n"
              "drain shards from a queue, which amortizes the gradient away.\n");
}

void cache_warm_vs_cold() {
  std::printf("\nPersistent result cache, cold vs warm (same spec, same directory):\n");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "profisched_e17_cache").string();
  std::filesystem::remove_all(dir);

  const dist::ShardSpec spec = make_spec(120);
  engine::SweepRunner runner;
  dist::ResultCache cache(dir);

  Table t({"run", "wall (s)", "hits", "misses", "speedup vs cold"});
  const engine::SweepResult cold = runner.run(spec.spec.sweep, &cache);
  t.row({"cold", bench::fmt(cold.elapsed_s), std::to_string(cold.cache_hits),
         std::to_string(cold.cache_misses), "1.00"});
  const engine::SweepResult warm = runner.run(spec.spec.sweep, &cache);
  t.row({"warm", bench::fmt(warm.elapsed_s), std::to_string(warm.cache_hits),
         std::to_string(warm.cache_misses),
         bench::fmt(warm.elapsed_s > 0 ? cold.elapsed_s / warm.elapsed_s : 0.0, 2)});
  t.print();

  const bool identical =
      engine::aggregate(spec.spec.sweep, cold).to_csv() ==
      engine::aggregate(spec.spec.sweep, warm).to_csv();
  std::printf("warm run all-hits: %s; warm output bit-identical to cold: %s\n"
              "Expected shape: warm misses == 0 and a clear speedup (the warm run only\n"
              "regenerates scenarios and reads records; every analysis is skipped).\n",
              warm.cache_misses == 0 ? "yes" : "NO", identical ? "yes" : "NO");
  std::filesystem::remove_all(dir);
}

void run_experiment() {
  bench::banner("E17", "distributed shards + persistent scenario-result cache");
  shard_scaling();
  cache_warm_vs_cold();
}

void BM_WarmCacheSweep(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "profisched_e17_bm_cache").string();
  std::filesystem::remove_all(dir);
  const dist::ShardSpec spec = make_spec(30);
  engine::SweepRunner runner;
  dist::ResultCache cache(dir);
  (void)runner.run(spec.spec.sweep, &cache);  // populate once
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(spec.spec.sweep, &cache).cache_hits);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WarmCacheSweep)->Unit(benchmark::kMillisecond);

void BM_ShardArtifactRoundTrip(benchmark::State& state) {
  const dist::ShardSpec spec = make_spec(30);
  dist::ShardRunner runner;
  const dist::ShardArtifact art = runner.run(spec, 0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::ShardArtifact::from_text(art.to_text()).range.end);
  }
}
BENCHMARK(BM_ShardArtifactRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

BENCH_MAIN(run_experiment)
