// bench_runner — the tracked benchmark-regression harness (BENCH_pr9.json).
//
// Unlike the e01–e17 experiment benches (google-benchmark, paper tables),
// this binary exists to pin the repo's measured performance trajectory: it
// times the three hot kernels the PR-4 overhaul reworked and emits one flat
// JSON file CI uploads and diffs against the committed baseline
// (bench/baseline_pr9.json, checked by tools/bench_check.py):
//
//   * per-scenario analyze ns/op — the core fixed-priority / EDF whole-set
//     analyses, measured BOTH through the retained reference implementations
//     (per-task index-span calls, exactly the seed-era analyze loop) and
//     through the SoA + scratch fast path, so the speedup ratio is computed
//     in-binary and is robust to machine noise;
//   * warm-start u-grid sweeps — run_usweep cold vs warm: wall time plus the
//     deterministic fixed-point iteration counts (machine-independent);
//   * SIMD dispatch ratios — the same fast paths timed with the vector
//     kernels live vs force_scalar(true), from one binary, with every result
//     (verdicts, WCRTs, iteration counts) compared bit-for-bit between the
//     two runs; ratio keys are only meaningful when simd_active == 1;
//   * engine scenarios/sec and simulator events/sec — end-to-end rates of
//     the two sweep backends.
//
// Every ref/opt and scalar/vector pair is also cross-checked for identical
// results — a disagreement aborts with a non-zero exit, so CI's "fail on
// crash" also covers silent divergence.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/busy_period.hpp"
#include "core/edf_feasibility.hpp"
#include "core/priority_assignment.hpp"
#include "core/response_time_edf.hpp"
#include "core/response_time_fp.hpp"
#include "core/simd.hpp"
#include "core/usweep.hpp"
#include "engine/sweep_runner.hpp"
#include "sim/network_sim.hpp"
#include "sim/rng.hpp"
#include "workload/generators.hpp"

namespace profisched::bench {
namespace {

struct Options {
  std::string json_path = "BENCH_pr9.json";
  bool quick = false;  ///< CI smoke: shorter timing windows
};

double min_seconds(const Options& opt) { return opt.quick ? 0.05 : 0.3; }

std::vector<TaskSet> task_pool(std::size_t count, std::size_t n, double u) {
  std::vector<TaskSet> pool;
  pool.reserve(count);
  for (std::uint64_t s = 1; s <= count; ++s) {
    sim::Rng rng(s * 7919);
    workload::TaskSetParams p;
    p.n = n;
    p.total_u = u;
    p.deadline_lo = 0.8;
    p.deadline_hi = 1.0;
    pool.push_back(workload::random_task_set(p, rng));
  }
  return pool;
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "bench_runner: ref/opt divergence in %s\n", what);
  std::exit(2);
}

/// The seed-era whole-set FP analysis: per-task reference calls with
/// freshly-built index vectors (what analyze_* did before the SoA path).
FpAnalysis reference_fp_analysis(const TaskSet& ts, const PriorityOrder& order, bool preemptive,
                                 Formulation form, int fuel) {
  FpAnalysis out;
  out.per_task.resize(ts.size());
  out.schedulable = true;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    const std::vector<std::size_t> higher(order.begin(),
                                          order.begin() + static_cast<std::ptrdiff_t>(pos));
    const std::vector<std::size_t> lower(order.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                                         order.end());
    out.per_task[i] = preemptive
                          ? response_time_preemptive(ts, i, higher, fuel)
                          : response_time_nonpreemptive(ts, i, higher, lower, form, fuel);
    if (!out.per_task[i].meets(ts[i].D)) out.schedulable = false;
  }
  return out;
}

bool same(const RtaResult& a, const RtaResult& b) {
  return a.converged == b.converged && a.response == b.response && a.iterations == b.iterations;
}

void core_analyze_metrics(const Options& opt, JsonObject& out, Table& table) {
  const std::vector<TaskSet> pool = task_pool(opt.quick ? 16 : 48, 12, 0.78);
  const int fuel = 1 << 16;

  std::vector<PriorityOrder> orders;
  orders.reserve(pool.size());
  for (const TaskSet& ts : pool) orders.push_back(deadline_monotonic_order(ts));

  // Cross-check once up front: the SoA path must reproduce the reference
  // RtaResults exactly, iteration counts included.
  RtaScratch scratch;
  for (std::size_t s = 0; s < pool.size(); ++s) {
    const FpAnalysis ref = reference_fp_analysis(pool[s], orders[s], /*preemptive=*/false,
                                                 kDefaultFormulation, fuel);
    const FpAnalysis fast =
        analyze_nonpreemptive_fp(pool[s], orders[s], kDefaultFormulation, fuel, scratch);
    if (ref.schedulable != fast.schedulable || ref.per_task.size() != fast.per_task.size()) {
      die("np-dm analyze");
    }
    for (std::size_t i = 0; i < ref.per_task.size(); ++i) {
      if (!same(ref.per_task[i], fast.per_task[i])) die("np-dm analyze");
    }
  }

  const auto per_set = [&](double total_ns) {
    return total_ns / static_cast<double>(pool.size());
  };

  double ns = time_ns_per_op(
      [&] {
        for (std::size_t s = 0; s < pool.size(); ++s) {
          const FpAnalysis a = reference_fp_analysis(pool[s], orders[s], false,
                                                     kDefaultFormulation, fuel);
          sink(&a);
        }
      },
      min_seconds(opt));
  const double np_ref = per_set(ns);
  out.put("core_np_dm_analyze_ns_ref", np_ref);

  ns = time_ns_per_op(
      [&] {
        for (std::size_t s = 0; s < pool.size(); ++s) {
          const FpAnalysis a =
              analyze_nonpreemptive_fp(pool[s], orders[s], kDefaultFormulation, fuel, scratch);
          sink(&a);
        }
      },
      min_seconds(opt));
  const double np_opt = per_set(ns);
  out.put("core_np_dm_analyze_ns_opt", np_opt);
  table.row({"NP-DM analyze (ns/set)", fmt(np_ref, 0), fmt(np_opt, 0), fmt(np_ref / np_opt, 2)});

  // EDF whole-set analysis: reference per-task scan vs SoA + offset warm.
  EdfRtaOptions edf_opt;
  for (const TaskSet& ts : pool) {
    EdfAnalysis ref;
    ref.per_task.resize(ts.size());
    ref.schedulable = true;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      ref.per_task[i] = edf_response_time_preemptive(ts, i, edf_opt);
      if (!ref.per_task[i].meets(ts[i].D)) ref.schedulable = false;
    }
    const EdfAnalysis fast = analyze_preemptive_edf(ts, edf_opt, scratch);
    if (ref.schedulable != fast.schedulable) die("edf analyze");
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ref.per_task[i].converged != fast.per_task[i].converged ||
          ref.per_task[i].response != fast.per_task[i].response ||
          ref.per_task[i].critical_offset != fast.per_task[i].critical_offset ||
          ref.per_task[i].offsets_examined != fast.per_task[i].offsets_examined) {
        die("edf analyze");
      }
    }
  }

  ns = time_ns_per_op(
      [&] {
        for (const TaskSet& ts : pool) {
          for (std::size_t i = 0; i < ts.size(); ++i) {
            const EdfRtaResult r = edf_response_time_preemptive(ts, i, edf_opt);
            sink(&r);
          }
        }
      },
      min_seconds(opt));
  const double edf_ref = per_set(ns);
  out.put("core_edf_analyze_ns_ref", edf_ref);

  ns = time_ns_per_op(
      [&] {
        for (const TaskSet& ts : pool) {
          const EdfAnalysis a = analyze_preemptive_edf(ts, edf_opt, scratch);
          sink(&a);
        }
      },
      min_seconds(opt));
  const double edf_opt_ns = per_set(ns);
  out.put("core_edf_analyze_ns_opt", edf_opt_ns);
  table.row(
      {"EDF analyze (ns/set)", fmt(edf_ref, 0), fmt(edf_opt_ns, 0), fmt(edf_ref / edf_opt_ns, 2)});

  // Busy period: reference TaskSet walk vs a bound view. Views are bound
  // once per set (the amortization every whole-set analysis gets — binding
  // inside the timed loop would charge the copy to a kernel that, in real
  // use, shares it with every other kernel of the same scenario).
  std::vector<TaskSetArena> arenas(pool.size());
  std::vector<const TaskSetView*> views;
  views.reserve(pool.size());
  for (std::size_t s = 0; s < pool.size(); ++s) views.push_back(&arenas[s].bind(pool[s]));
  for (std::size_t s = 0; s < pool.size(); ++s) {
    const BusyPeriod a = synchronous_busy_period(pool[s]);
    const BusyPeriod b = synchronous_busy_period(*views[s]);
    if (a.length != b.length || a.iterations != b.iterations) die("busy period");
  }
  ns = time_ns_per_op(
      [&] {
        for (const TaskSet& ts : pool) {
          const BusyPeriod b = synchronous_busy_period(ts);
          sink(&b);
        }
      },
      min_seconds(opt));
  const double bp_ref = per_set(ns);
  out.put("core_busy_period_ns_ref", bp_ref);
  ns = time_ns_per_op(
      [&] {
        for (const TaskSetView* v : views) {
          const BusyPeriod b = synchronous_busy_period(*v);
          sink(&b);
        }
      },
      min_seconds(opt));
  const double bp_opt = per_set(ns);
  out.put("core_busy_period_ns_opt", bp_opt);
  table.row({"busy period (ns/set)", fmt(bp_ref, 0), fmt(bp_opt, 0), fmt(bp_ref / bp_opt, 2)});
}

void usweep_metrics(const Options& opt, JsonObject& out, Table& table) {
  sim::Rng rng(424242);
  workload::TaskSetParams p;
  p.n = opt.quick ? 10 : 14;
  p.total_u = 0.5;
  p.deadline_lo = 0.9;
  p.deadline_hi = 1.0;
  const TaskSet base = workload::random_task_set(p, rng);

  // The grid leans into the saturation region: cold fixed points take the
  // most iterations near U -> 1, which is exactly where acceptance-curve
  // experiments need the most points — and where warm starts pay the most.
  USweepSpec spec;
  const std::size_t points = opt.quick ? 24 : 48;
  for (std::size_t k = 0; k < points; ++k) {
    spec.u_grid.push_back(0.55 + 0.43 * static_cast<double>(k) / static_cast<double>(points - 1));
  }
  spec.policies = {Policy::RateMonotonic, Policy::DeadlineMonotonic, Policy::NpDeadlineMonotonic,
                   Policy::Edf, Policy::NpEdf};

  // All-policy sweep: one cold + one warm pass. The EDF offset scans dwarf
  // the FP recurrences here, so only the (deterministic, machine-independent)
  // iteration counters are reported — wall-clock for the warm-start story is
  // measured on the FP-only sweep below, where the recurrences ARE the cost.
  spec.warm_start = false;
  const USweepResult cold = run_usweep(base, spec);
  spec.warm_start = true;
  const USweepResult warm = run_usweep(base, spec);

  // Warm-start must not change a single verdict or bound.
  for (std::size_t k = 0; k < cold.points.size(); ++k) {
    for (std::size_t c = 0; c < cold.points[k].cells.size(); ++c) {
      if (cold.points[k].cells[c].schedulable != warm.points[k].cells[c].schedulable ||
          cold.points[k].cells[c].worst_response != warm.points[k].cells[c].worst_response) {
        die("usweep warm-start");
      }
    }
  }

  out.put("usweep_cold_fp_iters", cold.fp_iterations);
  out.put("usweep_warm_fp_iters", warm.fp_iterations);
  out.put("usweep_cold_busy_iters", cold.busy_iterations);
  out.put("usweep_warm_busy_iters", warm.busy_iterations);
  table.row({"u-grid FP iterations", std::to_string(cold.fp_iterations),
             std::to_string(warm.fp_iterations),
             fmt(static_cast<double>(cold.fp_iterations) /
                     static_cast<double>(warm.fp_iterations),
                 2)});
  table.row({"u-grid busy-period iterations", std::to_string(cold.busy_iterations),
             std::to_string(warm.busy_iterations),
             fmt(static_cast<double>(cold.busy_iterations) /
                     static_cast<double>(warm.busy_iterations),
                 2)});

  // Fixed-priority-only sweep: here the warm-started recurrences ARE the
  // whole cost, so the wall-clock ratio tracks the iteration ratio. A dense
  // grid is realistic for acceptance curves and is exactly where warm seeds
  // land next to the new fixed points.
  spec.u_grid.clear();
  const std::size_t fp_points = opt.quick ? 64 : 160;
  for (std::size_t k = 0; k < fp_points; ++k) {
    spec.u_grid.push_back(0.55 +
                          0.445 * static_cast<double>(k) / static_cast<double>(fp_points - 1));
  }
  spec.policies = {Policy::RateMonotonic, Policy::DeadlineMonotonic,
                   Policy::NpDeadlineMonotonic};
  spec.warm_start = false;
  USweepResult fp_cold = run_usweep(base, spec);
  const double fp_cold_ms = time_ns_per_op([&] { fp_cold = run_usweep(base, spec); },
                                           min_seconds(opt)) / 1e6;
  spec.warm_start = true;
  USweepResult fp_warm = run_usweep(base, spec);
  const double fp_warm_ms = time_ns_per_op([&] { fp_warm = run_usweep(base, spec); },
                                           min_seconds(opt)) / 1e6;
  for (std::size_t k = 0; k < fp_cold.points.size(); ++k) {
    for (std::size_t c = 0; c < fp_cold.points[k].cells.size(); ++c) {
      if (fp_cold.points[k].cells[c].schedulable != fp_warm.points[k].cells[c].schedulable ||
          fp_cold.points[k].cells[c].worst_response !=
              fp_warm.points[k].cells[c].worst_response) {
        die("usweep fp warm-start");
      }
    }
  }
  out.put("usweep_fp_cold_ms", fp_cold_ms);
  out.put("usweep_fp_warm_ms", fp_warm_ms);
  out.put("usweep_fp_cold_iters", fp_cold.fp_iterations);
  out.put("usweep_fp_warm_iters", fp_warm.fp_iterations);
  table.row({"u-grid FP-only sweep (ms)", fmt(fp_cold_ms, 3), fmt(fp_warm_ms, 3),
             fmt(fp_cold_ms / fp_warm_ms, 2)});
  table.row({"u-grid FP-only iterations", std::to_string(fp_cold.fp_iterations),
             std::to_string(fp_warm.fp_iterations),
             fmt(static_cast<double>(fp_cold.fp_iterations) /
                     static_cast<double>(fp_warm.fp_iterations),
                 2)});
}

/// Vector-vs-scalar dispatch ratios: the same optimized paths, same binary,
/// timed with the lane kernels live and with force_scalar(true). Results are
/// compared bit-for-bit between the two runs first — any divergence aborts.
/// When no backend is active (non-AVX2 host, -DPROFISCHED_NO_SIMD=ON,
/// PROFISCHED_SIMD=0) only simd_active / simd_backend are emitted, so
/// tools/bench_check.py knows to skip the ratio gates.
void simd_metrics(const Options& opt, JsonObject& out, Table& table) {
  const bool active = simd::active() != nullptr;
  out.put("simd_active", static_cast<std::uint64_t>(active ? 1 : 0));
  out.put("simd_backend", std::string(simd::backend_name()));
  table.row({"SIMD backend", "-", simd::backend_name(), active ? "live" : "off"});
  if (!active) return;

  const std::vector<TaskSet> pool = task_pool(opt.quick ? 16 : 48, 12, 0.78);
  const int fuel = 1 << 16;
  std::vector<PriorityOrder> orders;
  orders.reserve(pool.size());
  for (const TaskSet& ts : pool) orders.push_back(deadline_monotonic_order(ts));
  RtaScratch scratch;
  const EdfRtaOptions edf_opt;

  // Cross-check: scalar and vector runs of every pool set must agree on
  // verdicts, WCRTs and iteration counts exactly.
  for (std::size_t s = 0; s < pool.size(); ++s) {
    const FpAnalysis fp_vec =
        analyze_nonpreemptive_fp(pool[s], orders[s], kDefaultFormulation, fuel, scratch);
    const EdfAnalysis edf_vec = analyze_preemptive_edf(pool[s], edf_opt, scratch);
    simd::force_scalar(true);
    const FpAnalysis fp_sc =
        analyze_nonpreemptive_fp(pool[s], orders[s], kDefaultFormulation, fuel, scratch);
    const EdfAnalysis edf_sc = analyze_preemptive_edf(pool[s], edf_opt, scratch);
    simd::force_scalar(false);
    if (fp_sc.schedulable != fp_vec.schedulable) die("simd np-dm analyze");
    for (std::size_t i = 0; i < fp_sc.per_task.size(); ++i) {
      if (!same(fp_sc.per_task[i], fp_vec.per_task[i])) die("simd np-dm analyze");
    }
    if (edf_sc.schedulable != edf_vec.schedulable) die("simd edf analyze");
    for (std::size_t i = 0; i < edf_sc.per_task.size(); ++i) {
      if (edf_sc.per_task[i].converged != edf_vec.per_task[i].converged ||
          edf_sc.per_task[i].response != edf_vec.per_task[i].response ||
          edf_sc.per_task[i].offsets_examined != edf_vec.per_task[i].offsets_examined) {
        die("simd edf analyze");
      }
    }
  }

  const auto timed = [&](auto&& body) {
    simd::force_scalar(false);
    const double vec_ns = time_ns_per_op(body, min_seconds(opt));
    simd::force_scalar(true);
    const double sc_ns = time_ns_per_op(body, min_seconds(opt));
    simd::force_scalar(false);
    return std::pair<double, double>{sc_ns, vec_ns};
  };

  auto [np_sc, np_vec] = timed([&] {
    for (std::size_t s = 0; s < pool.size(); ++s) {
      const FpAnalysis a =
          analyze_nonpreemptive_fp(pool[s], orders[s], kDefaultFormulation, fuel, scratch);
      sink(&a);
    }
  });
  out.put("core_np_dm_simd_ratio", np_sc / np_vec);
  table.row({"NP-DM analyze scalar/vector", fmt(np_sc / static_cast<double>(pool.size()), 0),
             fmt(np_vec / static_cast<double>(pool.size()), 0), fmt(np_sc / np_vec, 2)});

  auto [edf_sc_ns, edf_vec_ns] = timed([&] {
    for (const TaskSet& ts : pool) {
      const EdfAnalysis a = analyze_preemptive_edf(ts, edf_opt, scratch);
      sink(&a);
    }
  });
  out.put("core_edf_simd_ratio", edf_sc_ns / edf_vec_ns);
  table.row({"EDF analyze scalar/vector", fmt(edf_sc_ns / static_cast<double>(pool.size()), 0),
             fmt(edf_vec_ns / static_cast<double>(pool.size()), 0),
             fmt(edf_sc_ns / edf_vec_ns, 2)});

  std::vector<TaskSetArena> arenas(pool.size());
  std::vector<const TaskSetView*> views;
  views.reserve(pool.size());
  for (std::size_t s = 0; s < pool.size(); ++s) views.push_back(&arenas[s].bind(pool[s]));
  auto [bp_sc, bp_vec] = timed([&] {
    for (const TaskSetView* v : views) {
      const BusyPeriod b = synchronous_busy_period(*v);
      sink(&b);
    }
  });
  out.put("core_busy_simd_ratio", bp_sc / bp_vec);
  table.row({"busy period scalar/vector", fmt(bp_sc / static_cast<double>(pool.size()), 0),
             fmt(bp_vec / static_cast<double>(pool.size()), 0), fmt(bp_sc / bp_vec, 2)});

  // Warm FP-only sweep — the usweep acceptance metric — under both dispatches.
  sim::Rng rng(424242);
  workload::TaskSetParams p;
  p.n = opt.quick ? 10 : 14;
  p.total_u = 0.5;
  p.deadline_lo = 0.9;
  p.deadline_hi = 1.0;
  const TaskSet base = workload::random_task_set(p, rng);
  USweepSpec spec;
  const std::size_t fp_points = opt.quick ? 64 : 160;
  for (std::size_t k = 0; k < fp_points; ++k) {
    spec.u_grid.push_back(0.55 +
                          0.445 * static_cast<double>(k) / static_cast<double>(fp_points - 1));
  }
  spec.policies = {Policy::RateMonotonic, Policy::DeadlineMonotonic,
                   Policy::NpDeadlineMonotonic};
  spec.warm_start = true;
  USweepResult sweep_vec = run_usweep(base, spec);
  simd::force_scalar(true);
  const USweepResult sweep_sc = run_usweep(base, spec);
  simd::force_scalar(false);
  if (sweep_sc.fp_iterations != sweep_vec.fp_iterations) die("simd usweep");
  for (std::size_t k = 0; k < sweep_sc.points.size(); ++k) {
    for (std::size_t c = 0; c < sweep_sc.points[k].cells.size(); ++c) {
      if (sweep_sc.points[k].cells[c].schedulable != sweep_vec.points[k].cells[c].schedulable ||
          sweep_sc.points[k].cells[c].worst_response !=
              sweep_vec.points[k].cells[c].worst_response) {
        die("simd usweep");
      }
    }
  }
  auto [usweep_sc, usweep_vec] = timed([&] { sweep_vec = run_usweep(base, spec); });
  out.put("usweep_fp_warm_simd_ratio", usweep_sc / usweep_vec);
  table.row({"u-grid FP-only warm scalar/vector (ms)", fmt(usweep_sc / 1e6, 3),
             fmt(usweep_vec / 1e6, 3), fmt(usweep_sc / usweep_vec, 2)});
}

void engine_metrics(const Options& opt, JsonObject& out, Table& table) {
  engine::SweepSpec spec;
  spec.base.n_masters = 3;
  spec.base.streams_per_master = 4;
  spec.base.ttr = 3'000;  // UUniFast generation derives periods from T_cycle
  spec.points = {{0.3, 0.5, 1.0}, {0.6, 0.5, 1.0}, {0.85, 0.5, 1.0}};
  spec.scenarios_per_point = opt.quick ? 20 : 60;
  spec.policies = {engine::Policy::Fcfs, engine::Policy::Dm, engine::Policy::Edf};

  engine::SweepRunner runner(1);  // single-threaded: a per-core rate, stable in CI
  engine::SweepResult r = runner.run(spec);
  const double seconds_per_run = time_ns_per_op([&] { r = runner.run(spec); },
                                                min_seconds(opt)) / 1e9;
  const double rate = static_cast<double>(spec.total_scenarios()) / seconds_per_run;
  out.put("engine_scenarios_per_sec", rate);
  out.put("engine_scenarios_per_run", static_cast<std::uint64_t>(spec.total_scenarios()));
  table.row({"engine analyze (scenarios/s, 1 thread)", "-", fmt(rate, 0), "-"});
}

void sim_metrics(const Options& opt, JsonObject& out, Table& table) {
  workload::NetworkParams p;
  p.n_masters = 3;
  p.streams_per_master = 4;
  sim::Rng rng(99);
  const workload::GeneratedNetwork g = workload::random_network(p, rng);

  sim::SimConfig cfg;
  cfg.net = g.net;
  cfg.policy = profibus::ApPolicy::Dm;
  cfg.seed = 1234;
  cfg.horizon = opt.quick ? 1'000'000 : 4'000'000;

  std::uint64_t events = 0;
  const double seconds_per_run = time_ns_per_op(
      [&] {
        const sim::SimReport r = sim::simulate(cfg);
        events = r.events;
        sink(&r);
      },
      min_seconds(opt)) / 1e9;
  const double rate = static_cast<double>(events) / seconds_per_run;
  out.put("sim_events_per_sec", rate);
  out.put("sim_events_per_run", events);
  table.row({"simulator (events/s)", "-", fmt(rate, 0), "-"});
}

int run(const Options& opt) {
  JsonObject out;
  out.put("schema", std::string("profisched-bench-pr9-v1"));
#ifdef NDEBUG
  out.put("build", std::string("Release"));
#else
  out.put("build", std::string("Debug"));
#endif
  out.put("quick", static_cast<std::uint64_t>(opt.quick ? 1 : 0));

  banner("bench_runner", "hot-path kernel regression harness (PR 9)");
  Table table({"kernel", "reference", "optimized", "speedup"});
  core_analyze_metrics(opt, out, table);
  usweep_metrics(opt, out, table);
  simd_metrics(opt, out, table);
  engine_metrics(opt, out, table);
  sim_metrics(opt, out, table);
  table.print();

  std::ofstream f(opt.json_path, std::ios::binary);
  if (!f.good()) {
    std::fprintf(stderr, "bench_runner: cannot write %s\n", opt.json_path.c_str());
    return 1;
  }
  f << out.str();
  std::printf("\nwrote %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace profisched::bench

int main(int argc, char** argv) {
  profisched::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_runner [--quick] [--json PATH]\n");
      return 1;
    }
  }
  return profisched::bench::run(opt);
}
