// E7 (§3.3, eqs. 13–14): token-cycle-time analysis. T_del grows linearly in
// the ring's longest cycles; T_cycle = T_TR + T_del upper-bounds every
// observed token rotation in the simulator — including under saturating
// low-priority load, which is what causes the T_TH overruns that create the
// lateness in the first place.
#include "common.hpp"

#include "profibus/token_ring_analysis.hpp"
#include "sim/network_sim.hpp"
#include "workload/generators.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

Network make_ring(std::size_t n_masters, Ticks ttr) {
  Network net;
  net.ttr = ttr;
  for (std::size_t k = 0; k < n_masters; ++k) {
    Master m;
    m.name = "m" + std::to_string(k);
    m.high_streams = {
        MessageStream{.Ch = 500, .D = 1'000'000, .T = 50'000, .J = 0, .name = "hp"},
    };
    m.longest_low_cycle = 800;
    net.masters.push_back(std::move(m));
  }
  return net;
}

void run_experiment() {
  bench::banner("E7", "T_del / T_cycle vs ring size, with simulator validation (eqs. 13-14)");

  std::printf("\nAnalytic bounds and observed max token rotation (T_TR = 20'000,\n"
              "saturating LP load, synchronous HP traffic, 8 s simulated):\n");
  Table t({"masters", "T_del", "T_cycle eq.14", "T_cycle refined(max)", "sim max TRR",
           "sim/bound", "TTH overruns"});
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const Network net = make_ring(n, 20'000);
    const Ticks tdel = t_del(net);
    const Ticks tcycle = t_cycle(net);
    const std::vector<Ticks> refined = t_cycle_per_master(net, TcycleMethod::PerMasterRefined);
    const Ticks refined_max = *std::max_element(refined.begin(), refined.end());

    sim::SimConfig cfg;
    cfg.net = net;
    cfg.horizon = 4'000'000;
    cfg.lp_traffic.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      cfg.lp_traffic[k].push_back(sim::LpTraffic{.period = 2'000, .cycle_len = 800, .phase = 0});
    }
    const sim::SimReport r = sim::simulate(cfg);
    Ticks max_trr = 0;
    std::uint64_t overruns = 0;
    for (std::size_t k = 0; k < n; ++k) {
      max_trr = std::max(max_trr, r.token[k].max_trr);
      overruns += r.token[k].tth_overruns;
    }
    t.row({std::to_string(n), bench::fmt_t(tdel), bench::fmt_t(tcycle),
           bench::fmt_t(refined_max),
           bench::fmt_t(max_trr),
           bench::fmt(static_cast<double>(max_trr) / static_cast<double>(tcycle)),
           std::to_string(overruns)});
  }
  t.print();

  std::printf("\nT_cycle as a function of T_TR (4 masters):\n");
  Table s({"T_TR", "T_cycle", "sim max TRR", "sim/bound"});
  for (const Ticks ttr : {2'000, 5'000, 10'000, 40'000}) {
    const Network net = make_ring(4, ttr);
    sim::SimConfig cfg;
    cfg.net = net;
    cfg.horizon = 4'000'000;
    cfg.lp_traffic.assign(4, {sim::LpTraffic{.period = 2'000, .cycle_len = 800, .phase = 0}});
    const sim::SimReport r = sim::simulate(cfg);
    Ticks max_trr = 0;
    for (const auto& tok : r.token) max_trr = std::max(max_trr, tok.max_trr);
    s.row({bench::fmt_t(ttr), bench::fmt_t(t_cycle(net)), bench::fmt_t(max_trr),
           bench::fmt(static_cast<double>(max_trr) / static_cast<double>(t_cycle(net)))});
  }
  s.print();
  std::printf("\nExpected shape: T_del linear in ring size; sim/bound <= 1 everywhere and\n"
              "approaching 1 under load (the bound is tight up to phasing artifacts);\n"
              "refined per-master T_cycle never exceeds the uniform eq.-14 value.\n");
}

void BM_Simulate8Masters(benchmark::State& state) {
  const Network net = make_ring(8, 20'000);
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.net = net;
    cfg.horizon = 1'000'000;
    benchmark::DoNotOptimize(sim::simulate(cfg).events);
  }
}
BENCHMARK(BM_Simulate8Masters)->Unit(benchmark::kMillisecond);

}  // namespace

BENCH_MAIN(run_experiment)
