// bench_util.hpp — shared infrastructure for the benches: the fixed-width
// experiment tables and formatting helpers the e01–e17 binaries print, plus
// the chrono timing loop and the minimal JSON emitter bench_runner uses for
// BENCH_*.json. Deduplicated out of bench/common.hpp so the non-gbench
// bench_runner can link it without dragging google-benchmark in.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "core/time_types.hpp"

namespace profisched::bench {

/// Fixed-width plain-text table, printed as an experiment's output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Add one row; each cell already formatted.
  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt(double v, int precision = 3);
[[nodiscard]] std::string fmt_t(Ticks v);
[[nodiscard]] std::string pct(double ratio);
[[nodiscard]] std::string ms_from_ticks(Ticks v, Ticks ticks_per_ms = 500);

void banner(const char* experiment, const char* title);

// ------------------------------------------------------------------ timing

/// Wall-clock a body until it has run for at least `min_seconds` (and at
/// least once), returning nanoseconds per call. The body is a callable whose
/// result the caller must already sink (return or store something observable
/// — the loop adds no DoNotOptimize magic beyond keeping the call itself).
template <class Fn>
[[nodiscard]] double time_ns_per_op(Fn&& body, double min_seconds = 0.2) {
  using clock = std::chrono::steady_clock;
  std::uint64_t calls = 0;
  const auto t0 = clock::now();
  auto elapsed = [&] { return std::chrono::duration<double>(clock::now() - t0).count(); };
  do {
    body();
    ++calls;
  } while (elapsed() < min_seconds);
  return elapsed() * 1e9 / static_cast<double>(calls);
}

/// Force a value to be observed (a portable DoNotOptimize).
void sink(const void* p);

// ---------------------------------------------------------------- JSON out

/// Minimal flat JSON object writer: string/number members, insertion order
/// preserved. Enough for the BENCH_*.json schema; not a general serializer.
class JsonObject {
 public:
  void put(const std::string& key, double value);
  void put(const std::string& key, std::uint64_t value);
  void put(const std::string& key, const std::string& value);
  void put_raw(const std::string& key, const std::string& raw);  ///< pre-encoded value

  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> members_;
};

}  // namespace profisched::bench
