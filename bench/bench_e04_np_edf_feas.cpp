// E4 (§2.2, eqs. 4–5): the pessimism of Zheng & Shin's non-preemptive EDF
// test vs the George et al. refinement — the comparison the paper makes in
// prose ("to reduce the pessimism level of (4)"). The George test must accept
// a superset; the gap is the pessimism eliminated.
#include "common.hpp"

#include "core/edf_feasibility.hpp"
#include "workload/generators.hpp"

namespace {

using namespace profisched;
using bench::Table;

constexpr int kSetsPerCell = 400;

void run_experiment() {
  bench::banner("E4", "non-preemptive EDF: Zheng-Shin (eq. 4) vs George et al. (eq. 5)");

  std::printf("\nAcceptance ratios (%d sets per cell, n=5, D in [0.6T, T]):\n", kSetsPerCell);
  Table t({"U", "Zheng-Shin", "George", "George-only", "ZS-only (must be 0)"});
  sim::Rng rng(11);
  for (const double u : {0.30, 0.45, 0.60, 0.70, 0.80, 0.90}) {
    int zs = 0, ge = 0, ge_only = 0, zs_only = 0;
    for (int s = 0; s < kSetsPerCell; ++s) {
      workload::TaskSetParams p;
      p.n = 5;
      p.total_u = u;
      p.t_min = 50;
      p.t_max = 5'000;
      p.deadline_lo = 0.6;
      const TaskSet ts = workload::random_task_set(p, rng);
      const bool a = np_edf_feasible_zheng_shin(ts).feasible;
      const bool b = np_edf_feasible_george(ts).feasible;
      zs += a;
      ge += b;
      ge_only += (b && !a);
      zs_only += (a && !b);
    }
    t.row({bench::fmt(u, 2), bench::pct(1.0 * zs / kSetsPerCell),
           bench::pct(1.0 * ge / kSetsPerCell), std::to_string(ge_only),
           std::to_string(zs_only)});
  }
  t.print();

  std::printf("\nWhere the pessimism bites — mixed long/short execution times\n"
              "(Zheng-Shin charges the longest C at every instant, George only while a\n"
              "longer-deadline task exists):\n");
  // The structural gap: a big-C task with a *short* deadline. Past that
  // deadline George's blocking term falls to the small tasks' C − 1, while
  // Zheng–Shin keeps charging the big C at every instant.
  Table m({"big C", "Zheng-Shin", "George"});
  for (const Ticks c_big : {1'000, 2'000, 3'000}) {
    int zs = 0, ge = 0;
    for (int s = 0; s < kSetsPerCell; ++s) {
      std::vector<Task> tasks;
      tasks.push_back(
          Task{.C = c_big, .D = c_big + 2'200, .T = 40'000, .J = 0, .name = "big-short-D"});
      sim::Rng inner(rng.next());
      for (int i = 0; i < 3; ++i) {
        const Ticks period = workload::log_uniform(6'000, 12'000, inner);
        const Ticks c = std::max<Ticks>(1, period / 12);
        tasks.push_back(Task{.C = c, .D = period * 8 / 10, .T = period, .J = 0, .name = ""});
      }
      const TaskSet ts{std::move(tasks)};
      zs += np_edf_feasible_zheng_shin(ts).feasible;
      ge += np_edf_feasible_george(ts).feasible;
    }
    m.row({bench::fmt_t(c_big), bench::pct(1.0 * zs / kSetsPerCell),
           bench::pct(1.0 * ge / kSetsPerCell)});
  }
  m.print();
  std::printf("\nExpected shape: 'ZS-only' is identically zero (strict dominance); the\n"
              "George-only column grows with the long-task share — exactly the paper's\n"
              "argument for eq. 5 over eq. 4.\n");
}

void BM_ZhengShin(benchmark::State& state) {
  sim::Rng rng(13);
  workload::TaskSetParams p;
  p.n = 8;
  p.total_u = 0.7;
  p.deadline_lo = 0.7;
  const TaskSet ts = workload::random_task_set(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(np_edf_feasible_zheng_shin(ts).feasible);
}
BENCHMARK(BM_ZhengShin);

void BM_George(benchmark::State& state) {
  sim::Rng rng(13);
  workload::TaskSetParams p;
  p.n = 8;
  p.total_u = 0.7;
  p.deadline_lo = 0.7;
  const TaskSet ts = workload::random_task_set(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(np_edf_feasible_george(ts).feasible);
}
BENCHMARK(BM_George);

}  // namespace

BENCH_MAIN(run_experiment)
