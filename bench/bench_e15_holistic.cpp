// E15 (extension; the paper's §4.2 end-to-end concept taken to its cited
// conclusion [33,34]): holistic analysis of transactions spanning several
// masters — sense on one station, actuate from another. Shows the fixed
// point converging, the jitter coupling between transactions, and the
// DM-vs-EDF queue comparison at the transaction level.
#include "common.hpp"

#include "profibus/holistic.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

Network cell_with_streams() { return workload::scenarios::factory_cell(); }

std::vector<Transaction> make_transactions(Ticks period_scale) {
  // sense (conveyor photo-eye) → decide (cell controller) → act (robot
  // gripper): a realistic cross-master control loop on factory_cell streams.
  Transaction loop;
  loop.name = "sense-decide-act";
  loop.period = 100'000 * period_scale / 4;
  loop.deadline = loop.period;
  loop.stages = {
      TransactionStage{.master = 2, .stream = 0, .task_c = 500},   // photo-eye
      TransactionStage{.master = 0, .stream = 0, .task_c = 1'500}, // status/decision
      TransactionStage{.master = 1, .stream = 2, .task_c = 700},   // gripper-cmd
  };

  Transaction monitor;
  monitor.name = "alarm-scan";
  monitor.period = 50'000 * period_scale / 4;
  monitor.deadline = monitor.period;
  monitor.stages = {TransactionStage{.master = 0, .stream = 1, .task_c = 900}};
  return {loop, monitor};
}

void convergence_table() {
  std::printf("\nHolistic fixed point vs transaction rate (factory_cell substrate,\n"
              "DM queues; deadline = period):\n");
  Table t({"period scale", "iterations", "R(sense-decide-act)", "R(alarm-scan)",
           "schedulable"});
  for (const Ticks scale : {8, 4, 2, 1}) {
    const HolisticResult r =
        analyze_holistic(cell_with_streams(), make_transactions(scale));
    t.row({bench::fmt(static_cast<double>(scale) / 4.0, 2), std::to_string(r.iterations),
           r.converged ? bench::fmt_t(r.response[0]) : "diverged",
           r.converged ? bench::fmt_t(r.response[1]) : "diverged",
           r.schedulable ? "yes" : "NO"});
  }
  t.print();
}

void policy_comparison() {
  std::printf("\nDM vs EDF AP queues at the transaction level:\n");
  Table t({"policy", "R(sense-decide-act)", "R(alarm-scan)", "schedulable"});
  for (const ApPolicy policy : {ApPolicy::Dm, ApPolicy::Edf}) {
    HolisticOptions opt;
    opt.policy = policy;
    const HolisticResult r =
        analyze_holistic(cell_with_streams(), make_transactions(4), opt);
    t.row({std::string(to_string(policy)),
           r.converged ? bench::fmt_t(r.response[0]) : "diverged",
           r.converged ? bench::fmt_t(r.response[1]) : "diverged",
           r.schedulable ? "yes" : "NO"});
  }
  t.print();
}

void stage_decomposition() {
  std::printf("\nPer-stage cumulative responses of sense-decide-act (scale 1.0):\n");
  const HolisticResult r = analyze_holistic(cell_with_streams(), make_transactions(4));
  Table t({"stage", "cumulative R (ticks)", "cumulative R (ms)"});
  const char* names[] = {"sense (conveyor)", "decide (cell)", "act (robot)"};
  for (std::size_t s = 0; s < r.stage_response[0].size(); ++s) {
    t.row({names[s], bench::fmt_t(r.stage_response[0][s]),
           bench::ms_from_ticks(r.stage_response[0][s])});
  }
  t.print();
}

void run_experiment() {
  bench::banner("E15", "holistic multi-master transactions (the paper's section 4.2 extended)");
  convergence_table();
  policy_comparison();
  stage_decomposition();
  std::printf("\nExpected shape: the fixed point converges in a handful of iterations;\n"
              "responses grow as periods shrink (more interference per window) until\n"
              "the chain misses; per-stage responses accumulate monotonically.\n");
}

void BM_Holistic(benchmark::State& state) {
  const Network net = cell_with_streams();
  const auto transactions = make_transactions(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_holistic(net, transactions).schedulable);
  }
}
BENCHMARK(BM_Holistic);

}  // namespace

BENCH_MAIN(run_experiment)
