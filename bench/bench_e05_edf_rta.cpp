// E5 (§2.2, eqs. 6–8): Spuri's preemptive-EDF worst-case response times.
// Regenerates the key structural result: the worst case is NOT always the
// synchronous release — we count how often the critical offset is non-zero —
// and compares EDF response times against fixed-priority DM on the same sets.
#include "common.hpp"

#include "core/response_time_edf.hpp"
#include "core/schedulability.hpp"
#include "workload/generators.hpp"

namespace {

using namespace profisched;
using bench::Table;

constexpr int kSetsPerCell = 150;

void run_experiment() {
  bench::banner("E5", "preemptive EDF response-time analysis (Spuri, eqs. 6-8)");

  std::printf("\nCritical-offset statistics and EDF-vs-DM response comparison\n"
              "(%d sets per cell, n=4, D in [0.7T, T]):\n", kSetsPerCell);
  Table t({"U", "tasks w/ a*>0", "mean offsets/task", "mean R_EDF/D", "mean R_DM/D",
           "EDF sched%", "DM sched%"});
  sim::Rng rng(17);
  for (const double u : {0.50, 0.65, 0.80, 0.90, 0.95}) {
    int async_critical = 0, tasks_total = 0;
    double offsets_sum = 0, redf = 0, rdm = 0;
    int edf_ok = 0, dm_ok = 0, samples = 0;
    for (int s = 0; s < kSetsPerCell; ++s) {
      workload::TaskSetParams p;
      p.n = 4;
      p.total_u = u;
      p.t_min = 50;
      p.t_max = 2'000;
      p.deadline_lo = 0.7;
      const TaskSet ts = workload::random_task_set(p, rng);
      const EdfAnalysis edf = analyze_preemptive_edf(ts);
      const Verdict dm = analyze(ts, Policy::DeadlineMonotonic);
      edf_ok += edf.schedulable;
      dm_ok += dm.schedulable;
      bool all_converged = true;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (!edf.per_task[i].converged) {
          all_converged = false;
          continue;
        }
        ++tasks_total;
        async_critical += edf.per_task[i].critical_offset > 0;
        offsets_sum += static_cast<double>(edf.per_task[i].offsets_examined);
      }
      if (all_converged && dm.schedulable) {
        double we = 0, wd = 0;
        for (std::size_t i = 0; i < ts.size(); ++i) {
          we = std::max(we, static_cast<double>(edf.per_task[i].response) /
                                static_cast<double>(ts[i].D));
          wd = std::max(wd, static_cast<double>(dm.per_task[i].response) /
                                static_cast<double>(ts[i].D));
        }
        redf += we;
        rdm += wd;
        ++samples;
      }
    }
    const double d = samples > 0 ? samples : 1;
    const double tt = tasks_total > 0 ? tasks_total : 1;
    t.row({bench::fmt(u, 2), bench::pct(async_critical / tt), bench::fmt(offsets_sum / tt, 1),
           bench::fmt(redf / d), bench::fmt(rdm / d), bench::pct(1.0 * edf_ok / kSetsPerCell),
           bench::pct(1.0 * dm_ok / kSetsPerCell)});
  }
  t.print();
  std::printf("\nExpected shape: a non-trivial share of tasks have their worst case at\n"
              "a > 0 (Spuri's point about the invalid FP critical instant); EDF's\n"
              "schedulable%% dominates DM's, with the gap widening as U grows.\n");
}

void BM_EdfRta(benchmark::State& state) {
  sim::Rng rng(19);
  workload::TaskSetParams p;
  p.n = static_cast<std::size_t>(state.range(0));
  p.total_u = 0.8;
  p.t_min = 50;
  p.t_max = 1'000;
  p.deadline_lo = 0.8;
  const TaskSet ts = workload::random_task_set(p, rng);
  for (auto _ : state) benchmark::DoNotOptimize(analyze_preemptive_edf(ts).schedulable);
}
BENCHMARK(BM_EdfRta)->Arg(3)->Arg(5)->Arg(8);

}  // namespace

BENCH_MAIN(run_experiment)
