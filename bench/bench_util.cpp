#include "bench_util.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace profisched::bench {

void Table::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(width[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& r : rows_) print_row(r);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_t(Ticks v) { return v == kNoBound ? "unbounded" : std::to_string(v); }

std::string pct(double ratio) { return fmt(100.0 * ratio, 1) + "%"; }

std::string ms_from_ticks(Ticks v, Ticks ticks_per_ms) {
  return fmt(static_cast<double>(v) / static_cast<double>(ticks_per_ms), 2);
}

void banner(const char* experiment, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment, title);
  std::printf("================================================================\n");
}

void sink(const void* p) {
  // An opaque side effect the optimizer must assume reads *p.
  static std::atomic<const void*> hole;
  hole.store(p, std::memory_order_relaxed);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void JsonObject::put(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  members_.emplace_back(key, buf);
}

void JsonObject::put(const std::string& key, std::uint64_t value) {
  members_.emplace_back(key, std::to_string(value));
}

void JsonObject::put(const std::string& key, const std::string& value) {
  members_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void JsonObject::put_raw(const std::string& key, const std::string& raw) {
  members_.emplace_back(key, raw);
}

std::string JsonObject::str() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    out += "  \"" + json_escape(members_[i].first) + "\": " + members_[i].second;
    if (i + 1 < members_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace profisched::bench
