// E9 (§3.4, eq. 15): setting the T_TR parameter. Sweeps T_TR across the
// feasible range and shows the schedulability frontier for all three
// dispatching policies, plus the exact eq.-15 boundary.
#include "common.hpp"

#include "profibus/dispatching.hpp"
#include "profibus/ttr_setting.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace profisched;
using namespace profisched::profibus;
using bench::Table;

void run_experiment() {
  bench::banner("E9", "T_TR parameter setting and the eq.-15 schedulability frontier");

  Network net = workload::scenarios::factory_cell();
  const TtrRange range = ttr_range_fcfs(net);
  std::printf("\nfactory_cell: T_del = %lld ticks, eq.-15 feasible T_TR range = [%lld, %lld]\n",
              static_cast<long long>(t_del(net)), static_cast<long long>(range.min),
              static_cast<long long>(range.max));

  std::printf("\nSchedulability vs T_TR (sweep across and beyond the frontier):\n");
  Table t({"T_TR", "T_cycle", "FCFS", "DM", "EDF"});
  std::vector<Ticks> sweep;
  for (int i = 1; i <= 4; ++i) sweep.push_back(range.min + (range.max - range.min) * i / 4);
  sweep.push_back(range.max + 1);
  sweep.push_back(range.max * 3 / 2);
  sweep.push_back(range.max * 3);
  for (const Ticks ttr : sweep) {
    net.ttr = ttr;
    const auto verdict = [&](ApPolicy p) {
      return analyze_network(net, p).schedulable ? std::string("yes") : std::string("NO");
    };
    t.row({bench::fmt_t(ttr), bench::fmt_t(t_cycle(net)), verdict(ApPolicy::Fcfs),
           verdict(ApPolicy::Dm), verdict(ApPolicy::Edf)});
  }
  t.print();

  std::printf("\nBoundary exactness: eq. 15 maximum vs one tick beyond:\n");
  Table b({"setting", "T_TR", "FCFS schedulable"});
  net.ttr = range.max;
  b.row({"eq.15 max", bench::fmt_t(net.ttr),
         analyze_network(net, ApPolicy::Fcfs).schedulable ? "yes" : "NO"});
  net.ttr = range.max + 1;
  b.row({"max + 1", bench::fmt_t(net.ttr),
         analyze_network(net, ApPolicy::Fcfs).schedulable ? "yes" : "NO"});
  b.print();

  std::printf("\nExpected shape: FCFS flips from yes to NO exactly past the eq.-15\n"
              "maximum; DM/EDF tolerate strictly larger T_TR (more low-priority\n"
              "bandwidth per rotation) before their tighter per-stream bounds break.\n");
}

void BM_TtrRange(benchmark::State& state) {
  const Network net = workload::scenarios::factory_cell();
  for (auto _ : state) benchmark::DoNotOptimize(ttr_range_fcfs(net).max);
}
BENCHMARK(BM_TtrRange);

}  // namespace

BENCH_MAIN(run_experiment)
